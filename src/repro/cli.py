"""Command-line interface for custom Willow runs.

Usage::

    python -m repro.cli --utilization 0.5 --ticks 100 --hot 4 --seed 7
    python -m repro.cli --supply-dip 0.4 --dip-at 40 --export-json run.json
    python -m repro.cli --vectorized --ticks 500     # array-based tick path
    python -m repro.cli bench                        # performance benchmarks
    python -m repro.cli bench --quick --out .        # CI smoke variant
    python -m repro.cli degraded --drop 0.2 --latency 1 --crashes 2
    python -m repro.cli resilience --crashes 3 --sensor-faults 4 --trips 1
    python -m repro.cli resilience --trips 2 --trace run.trace
    python -m repro.cli federation --sites 3 --policy greedy-greenest
    python -m repro.cli trace run.trace --server 3 --tick 40
    python -m repro.cli serve audit.jsonl --port 7717
    python -m repro.cli serve audit.jsonl --ticks 5 --tick-seconds 0.1 --load 5000
    python -m repro.cli replay audit.jsonl
    python -m repro.cli serve audit.jsonl --checkpoint-dir run.ckpt
    python -m repro.cli serve audit.jsonl --recover --ticks 20
    python -m repro.cli checkpoint run.ckpt --ticks 200 --seed 7
    python -m repro.cli resume run.ckpt
    python -m repro.cli bench service --quick
    python -m repro.cli --version

Builds the paper's 18-server data center (or a custom balanced tree),
runs the controller, and prints a summary; optional CSV/JSON export.
``bench`` runs the hot-path benchmark harness
(:mod:`repro.benchmarks.harness`) and writes ``BENCH_tick.json`` and
``BENCH_sweep.json``.  ``degraded`` runs the distributed control plane
(:mod:`repro.control_plane`) under lossy transport and fault injection
and reports the divergence from the ideal synchronous controller.
``resilience`` injects *physical* faults (server crashes, lying thermal
sensors, cooling derates, circuit trips) through the sensor-fault-
tolerant controller (:mod:`repro.plant_faults`) and reports QoS loss
and the thermal-safety verdict.  ``federation`` runs N sites on
anti-correlated solar supply with supply-aware cross-site load shifting
(:mod:`repro.federation`).

``serve`` runs Willow-as-a-service (:mod:`repro.service`): a live,
wall-clock-ticked controller fed by external JSON-lines events over TCP
with bounded-queue backpressure, every accepted event recorded in a
replayable audit log.  ``replay`` re-executes an audit log offline and
verifies bit-exact parity with the live run (see docs/service.md).

``checkpoint``/``resume`` run and resume crash-safe batch simulations,
and ``serve --recover`` restores a killed live run from its latest
valid checkpoint plus the audit tail -- both resume bit-exactly (see
docs/checkpointing.md).

Every run subcommand takes ``--trace FILE`` to record the structured
tick trace (:mod:`repro.trace`); ``trace`` replays a recorded file into
a per-node causal explanation -- the budget's path down the tree with
the constraint that bound at each level (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def package_version() -> str:
    """The installed version from package metadata, or the source
    fallback when running uninstalled (PYTHONPATH=src)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Run Willow on a simulated data center.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    parser.add_argument(
        "--utilization", type=float, default=0.5,
        help="target mean utilization in (0, 1] (default 0.5)",
    )
    parser.add_argument(
        "--ticks", type=int, default=100, help="control ticks to run"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--hot", type=int, default=0, metavar="N",
        help="put the last N servers in a 40C hot zone",
    )
    parser.add_argument(
        "--branching", type=str, default=None, metavar="A,B,C",
        help="custom balanced tree, e.g. 3,3,3 (default: paper's 2,3,3)",
    )
    parser.add_argument(
        "--supply-factor", type=float, default=1.0,
        help="nominal supply as a multiple of fleet circuit capacity",
    )
    parser.add_argument(
        "--supply-dip", type=float, default=0.0, metavar="FRAC",
        help="mid-run supply dip fraction (0 disables)",
    )
    parser.add_argument(
        "--dip-at", type=int, default=None, metavar="TICK",
        help="tick the dip starts (default: half the run)",
    )
    parser.add_argument(
        "--supply-csv", type=str, default=None, metavar="FILE",
        help="drive the root budget from a time,budget CSV "
             "(overrides --supply-factor/--supply-dip)",
    )
    parser.add_argument(
        "--no-consolidation", action="store_true",
        help="disable consolidation/sleep",
    )
    parser.add_argument(
        "--vectorized", action="store_true",
        help="use the array-based controller (same results, faster)",
    )
    parser.add_argument(
        "--p-min", type=float, default=None, help="migration margin (W)"
    )
    parser.add_argument(
        "--battery", type=str, default=None, metavar="CAPACITY[:RATE]",
        help="buffer the supply through a UPS battery: capacity in "
             "W*ticks, optional charge/discharge rate in W "
             "(default rate: capacity/8)",
    )
    parser.add_argument(
        "--export-csv", type=str, default=None, metavar="DIR",
        help="write per-record CSVs to DIR",
    )
    parser.add_argument(
        "--export-json", type=str, default=None, metavar="FILE",
        help="write the full run as JSON",
    )
    _add_trace_argument(parser)
    return parser


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", type=str, default=None, metavar="FILE",
        help="record a structured tick trace (JSONL; replay with "
             "'python -m repro.cli trace FILE')",
    )


def _open_tracer(path: Optional[str]):
    """A recording tracer for ``--trace FILE``, or None when unset."""
    if not path:
        return None
    from repro.trace import JsonlTraceWriter, Tracer

    return Tracer(JsonlTraceWriter(path))


def _close_tracer(tracer, path: Optional[str]) -> None:
    if tracer is not None:
        tracer.close()
        print(f"wrote trace to {path}")


def _missing_parent(path: str, flag: str) -> Optional[str]:
    """A clear error message when an output path's directory is absent.

    Output flags that write a single file (``bench --profile``, the
    ``serve`` audit log) fail up front with this instead of a traceback
    deep inside ``open``/``dump_stats`` -- and without silently
    creating whole directory trees the user probably mistyped.
    """
    from pathlib import Path

    parent = Path(path).expanduser().parent
    if not parent.is_dir():
        return (
            f"{flag}: directory {parent} does not exist "
            f"(create it first, or check the path)"
        )
    return None


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli bench",
        description="Run the hot-path benchmark harness.",
    )
    parser.add_argument(
        "suite", nargs="?", choices=("all", "service", "gym"), default="all",
        help="'service' or 'gym' reruns only that suite and merges it "
             "into an existing BENCH_tick.json (default: all suites)",
    )
    parser.add_argument(
        "--out", type=str, default=".", metavar="DIR",
        help="directory for BENCH_tick.json / BENCH_sweep.json (default .)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-sized run (fewer ticks/iterations, same schema)",
    )
    parser.add_argument(
        "--sizes", type=str, default=None, metavar="N,M",
        help="comma-separated fleet sizes from {18, 64, 256}",
    )
    parser.add_argument(
        "--profile", type=str, default=None, metavar="FILE",
        help="profile the benchmark run with cProfile and dump pstats "
             "to FILE (inspect with 'python -m pstats FILE')",
    )
    return parser


def bench_main(argv: List[str]) -> int:
    args = build_bench_parser().parse_args(argv)
    from repro.benchmarks.harness import (
        FLEET_SHAPES,
        format_gym_report,
        format_report,
        format_service_report,
        run_benchmarks,
        run_gym_benchmark,
        run_service_benchmark,
    )

    sizes = None
    if args.sizes:
        try:
            sizes = tuple(int(x) for x in args.sizes.split(","))
        except ValueError:
            print("--sizes must be comma-separated ints", file=sys.stderr)
            return 2
        unknown = [s for s in sizes if s not in FLEET_SHAPES]
        if unknown:
            print(
                f"--sizes must be from {sorted(FLEET_SHAPES)}, got {unknown}",
                file=sys.stderr,
            )
            return 2
    if args.profile:
        error = _missing_parent(args.profile, "--profile")
        if error:
            print(error, file=sys.stderr)
            return 2

    def run():
        if args.suite == "service":
            return {"tick": run_service_benchmark(args.out, quick=args.quick)}
        if args.suite == "gym":
            return {"tick": run_gym_benchmark(args.out, quick=args.quick)}
        return run_benchmarks(args.out, quick=args.quick, sizes=sizes)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            paths = run()
        finally:
            profiler.disable()
        stats = pstats.Stats(profiler)
        stats.dump_stats(args.profile)
        print(f"wrote profile to {args.profile}; top by cumulative time:")
        stats.sort_stats("cumulative").print_stats(15)
    else:
        paths = run()
    if args.suite in ("service", "gym"):
        import json

        payload = json.loads(paths["tick"].read_text())
        if args.suite == "service":
            print(format_service_report(payload["service"]))
        else:
            print(format_gym_report(payload["gym"]))
        print(f"wrote {paths['tick']}")
    else:
        print(format_report(paths))
        print(f"wrote {paths['tick']} and {paths['sweep']}")
    return 0


def build_degraded_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli degraded",
        description=(
            "Run the distributed control plane under lossy transport and "
            "fault injection; report divergence from the ideal controller."
        ),
    )
    parser.add_argument(
        "--ticks", type=int, default=80, help="control ticks to run"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--utilization", type=float, default=0.5,
        help="target mean utilization in (0, 1] (default 0.5)",
    )
    parser.add_argument(
        "--drop", type=float, default=0.0, metavar="P",
        help="per-link message drop probability in [0, 1)",
    )
    parser.add_argument(
        "--latency", type=int, default=0, metavar="TICKS",
        help="per-link base delivery latency in ticks",
    )
    parser.add_argument(
        "--jitter", type=int, default=0, metavar="TICKS",
        help="uniform extra delay in {0..JITTER} ticks per transmission",
    )
    parser.add_argument(
        "--dup", type=float, default=0.0, metavar="P",
        help="per-link duplication probability in [0, 1)",
    )
    parser.add_argument(
        "--reorder", type=float, default=0.0, metavar="P",
        help="probability a message is held back an extra tick",
    )
    parser.add_argument(
        "--crashes", type=int, default=0, metavar="N",
        help="inject N seeded PMU crash/restart windows",
    )
    parser.add_argument(
        "--partitions", type=int, default=0, metavar="N",
        help="inject N seeded link-partition windows",
    )
    parser.add_argument(
        "--ttl", type=int, default=None, metavar="TICKS",
        help="budget staleness TTL (default: 3 supply periods)",
    )
    parser.add_argument(
        "--unreliable", action="store_true",
        help="disable acks/retries (fire-and-forget transport)",
    )
    _add_trace_argument(parser)
    return parser


def degraded_main(argv: List[str]) -> int:
    args = build_degraded_parser().parse_args(argv)
    if not 0.0 < args.utilization <= 1.0:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 2
    if args.ticks < 1:
        print("--ticks must be >= 1", file=sys.stderr)
        return 2
    for name in ("drop", "dup", "reorder"):
        if not 0.0 <= getattr(args, name) < 1.0:
            print(f"--{name} must be in [0, 1)", file=sys.stderr)
            return 2
    if args.latency < 0 or args.jitter < 0:
        print("--latency/--jitter must be >= 0", file=sys.stderr)
        return 2
    if args.crashes < 0 or args.partitions < 0:
        print("--crashes/--partitions must be >= 0", file=sys.stderr)
        return 2

    from repro.control_plane import (
        ControlPlaneConfig,
        FaultSchedule,
        LinkProfile,
        StalenessPolicy,
        divergence_summary,
        random_fault_schedule,
        run_distributed,
    )
    from repro.core import WillowConfig
    from repro.core.controller import run_willow
    from repro.metrics import summarize_run
    from repro.topology import build_paper_simulation

    config = WillowConfig()
    tree = build_paper_simulation()
    control_plane = ControlPlaneConfig(
        default_link=LinkProfile(
            latency_ticks=args.latency,
            jitter_ticks=args.jitter,
            drop_prob=args.drop,
            dup_prob=args.dup,
            reorder_prob=args.reorder,
        ),
        staleness=StalenessPolicy(ttl_ticks=args.ttl),
        reliable=not args.unreliable,
    )
    faults = FaultSchedule()
    if args.crashes or args.partitions:
        faults = random_fault_schedule(
            tree,
            seed=args.seed,
            horizon_ticks=args.ticks,
            n_crashes=args.crashes,
            n_partitions=args.partitions,
        )

    run_kwargs = dict(
        config=config,
        target_utilization=args.utilization,
        n_ticks=args.ticks,
        seed=args.seed,
    )
    tracer = _open_tracer(args.trace)
    controller, collector = run_distributed(
        tree=tree, control_plane=control_plane, faults=faults,
        tracer=tracer, **run_kwargs
    )
    _close_tracer(tracer, args.trace)
    _, ideal = run_willow(**run_kwargs)

    print(
        f"Distributed Willow run: {len(tree.servers())} servers, "
        f"U={args.utilization:.0%}, {args.ticks} ticks, seed {args.seed}"
    )
    print(
        f"transport: drop={args.drop}, latency={args.latency}t, "
        f"jitter={args.jitter}t, dup={args.dup}, reorder={args.reorder}, "
        f"{'unreliable' if args.unreliable else 'reliable (ack+retry)'}"
    )
    for crash in faults.crashes:
        print(
            f"fault: PMU {crash.node_id} down ticks "
            f"[{crash.start_tick}, {crash.end_tick})"
        )
    for part in faults.partitions:
        print(
            f"fault: link {part.link} partitioned ticks "
            f"[{part.start_tick}, {part.end_tick})"
        )
    print(summarize_run(collector).format())

    stats = controller.transport_stats()
    print(
        f"transport stats: sent={stats.sent} retransmits={stats.retransmits} "
        f"delivered={stats.delivered} dup_delivered={stats.duplicates_delivered}"
    )
    print(
        f"                 dropped: loss={stats.dropped_loss} "
        f"partition={stats.dropped_partition} crash={stats.dropped_crash} "
        f"expired={stats.expired} stale_discards={controller.stale_discards()}"
    )
    summary = divergence_summary(ideal, collector)
    print(
        "divergence vs ideal controller: "
        f"budget {summary['budget_mean']:.2f} W mean / "
        f"{summary['budget_max']:.1f} W max, "
        f"temperature {summary['temperature_mean']:.3f} C mean / "
        f"{summary['temperature_max']:.2f} C max"
    )
    t_limit = config.thermal.t_limit
    worst = max(s.temperature for s in collector.server_samples)
    print(
        f"thermal safety: worst temperature {worst:.2f} C vs "
        f"T_limit {t_limit:.0f} C "
        f"({'OK' if worst <= t_limit + 1e-6 else 'VIOLATED'})"
    )
    return 0


def build_resilience_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli resilience",
        description=(
            "Run Willow under physical plant faults (crashes, sensor "
            "faults, cooling derates, circuit trips) with the sensor-"
            "fault-tolerant controller; report QoS loss and safety."
        ),
    )
    parser.add_argument(
        "--ticks", type=int, default=80, help="control ticks to run"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--utilization", type=float, default=0.5,
        help="target mean utilization in (0, 1] (default 0.5)",
    )
    parser.add_argument(
        "--crashes", type=int, default=0, metavar="N",
        help="inject N seeded server crash/restart windows",
    )
    parser.add_argument(
        "--sensor-faults", type=int, default=0, metavar="N",
        help="inject N seeded thermal-sensor fault windows",
    )
    parser.add_argument(
        "--cooling-events", type=int, default=0, metavar="N",
        help="inject N seeded CRAC derate windows",
    )
    parser.add_argument(
        "--trips", type=int, default=0, metavar="N",
        help="inject N seeded branch-circuit trip windows",
    )
    parser.add_argument(
        "--outside", type=float, default=35.0, metavar="DEGC",
        help="outside air temperature mixed in by degraded cooling",
    )
    _add_trace_argument(parser)
    return parser


def resilience_main(argv: List[str]) -> int:
    args = build_resilience_parser().parse_args(argv)
    if not 0.0 < args.utilization <= 1.0:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 2
    if args.ticks < 1:
        print("--ticks must be >= 1", file=sys.stderr)
        return 2
    for name in ("crashes", "sensor_faults", "cooling_events", "trips"):
        if getattr(args, name) < 0:
            print(
                f"--{name.replace('_', '-')} must be >= 0", file=sys.stderr
            )
            return 2

    from repro.core import WillowConfig
    from repro.core.events import MigrationCause
    from repro.metrics import summarize_run
    from repro.plant_faults import (
        PlantFaultSchedule,
        random_plant_schedule,
        run_resilient,
    )
    from repro.topology import build_paper_simulation

    config = WillowConfig()
    tree = build_paper_simulation()
    schedule = PlantFaultSchedule()
    if args.crashes or args.sensor_faults or args.cooling_events or args.trips:
        schedule = random_plant_schedule(
            tree,
            seed=args.seed,
            horizon_ticks=args.ticks,
            n_crashes=args.crashes,
            n_sensor_faults=args.sensor_faults,
            n_cooling_events=args.cooling_events,
            n_circuit_trips=args.trips,
        )

    tracer = _open_tracer(args.trace)
    controller, collector = run_resilient(
        tree=tree,
        config=config,
        plant_faults=schedule,
        outside_temp=args.outside,
        target_utilization=args.utilization,
        n_ticks=args.ticks,
        seed=args.seed,
        tracer=tracer,
    )
    _close_tracer(tracer, args.trace)

    print(
        f"Resilient Willow run: {len(tree.servers())} servers, "
        f"U={args.utilization:.0%}, {args.ticks} ticks, seed {args.seed}"
    )
    print(
        f"plant faults: crashes={len(schedule.crashes)} "
        f"sensor={len(schedule.sensor_faults)} "
        f"cooling={len(schedule.cooling)} trips={len(schedule.trips)} "
        f"(outside {args.outside:.0f} C)"
    )
    for crash in schedule.crashes:
        print(
            f"fault: server {crash.server_id} crashed ticks "
            f"[{crash.start_tick}, {crash.end_tick})"
        )
    for fault in schedule.sensor_faults:
        print(
            f"fault: sensor {fault.server_id} {fault.kind} ticks "
            f"[{fault.start_tick}, {fault.end_tick})"
        )
    for event in schedule.cooling:
        zone = "facility" if event.zone_id is None else f"zone {event.zone_id}"
        print(
            f"fault: cooling {zone} derate {event.derate:.0%} ticks "
            f"[{event.start_tick}, {event.end_tick})"
        )
    for trip in schedule.trips:
        print(
            f"fault: circuit {trip.node_id} tripped ticks "
            f"[{trip.start_tick}, {trip.end_tick})"
        )
    print(summarize_run(collector).format())
    print(
        f"evacuations          : "
        f"{collector.migration_count(MigrationCause.EVACUATION)}"
    )
    t_limit = config.thermal.t_limit
    worst = max(s.temperature for s in collector.server_samples)
    min_budget = min(s.budget for s in collector.server_samples)
    violations = sum(
        s.thermal.violations for s in controller.servers.values()
    )
    print(
        f"thermal safety: worst temperature {worst:.2f} C vs "
        f"T_limit {t_limit:.0f} C, {violations} violations "
        f"({'OK' if worst <= t_limit + 1e-6 and not violations else 'VIOLATED'})"
    )
    print(
        f"budget floor: {min_budget:.2f} W "
        f"({'OK' if min_budget >= 0 else 'VIOLATED'})"
    )
    return 0


def build_federation_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli federation",
        description=(
            "Run a geo-federation: N Willow sites on anti-correlated "
            "solar supply, tick-locked, with supply-aware cross-site "
            "load shifting (see docs/federation.md)."
        ),
    )
    parser.add_argument(
        "--sites", type=int, default=2, metavar="N",
        help="number of sites (solar humps spread 1/N day apart)",
    )
    parser.add_argument(
        "--ticks", type=int, default=192, help="control ticks to run"
    )
    parser.add_argument("--seed", type=int, default=1, help="RNG seed")
    parser.add_argument(
        "--utilization", type=float, default=0.35,
        help="per-site target mean utilization in (0, 1] (default 0.35)",
    )
    parser.add_argument(
        "--policy", type=str, default="proportional",
        help="shifting policy: neutral, proportional, greedy-greenest, "
             "price-aware, predictive (default proportional)",
    )
    parser.add_argument(
        "--horizon", type=int, default=0, metavar="K",
        help="lookahead supply periods for --policy predictive "
             "(0 degrades to proportional; default 0)",
    )
    parser.add_argument(
        "--cooling", action="store_true",
        help="charge the modeled cooling-plant overhead against every "
             "site budget and let the predictive planner actuate "
             "supply-air setpoints (incompatible with --vectorized)",
    )
    parser.add_argument(
        "--outside-temp", type=float, default=30.0, metavar="DEG_C",
        help="outside air temperature for --cooling (default 30)",
    )
    parser.add_argument(
        "--wan-cost", type=float, default=None, metavar="W",
        help="WAN migration cost charged to both end servers "
             "(default: 4x the intra-site migration cost)",
    )
    parser.add_argument(
        "--wan-ticks", type=int, default=None, metavar="N",
        help="ticks the WAN cost persists (default: 2x intra-site)",
    )
    parser.add_argument(
        "--battery", type=str, default=None, metavar="CAPACITY[:RATE]",
        help="give every site a UPS battery (starts empty): capacity "
             "in W*ticks, optional rate in W (default: capacity/8)",
    )
    parser.add_argument(
        "--solar-peak", type=float, default=None, metavar="W",
        help="per-site solar peak in W (default: the federation "
             "experiment's sizing)",
    )
    parser.add_argument(
        "--forecast", type=str, default="oracle", metavar="SPEC",
        help="supply forecast model for forecast-aware policies: "
             "oracle, persistence, noisy-oracle:SIGMA[:SEED], "
             "ar1:RHO:SIGMA[:SEED] (default oracle)",
    )
    parser.add_argument(
        "--vectorized", action="store_true",
        help="batch all sites into one shared fleet block "
             "(same results, faster; see docs/performance.md)",
    )
    _add_trace_argument(parser)
    return parser


def federation_main(argv: List[str]) -> int:
    args = build_federation_parser().parse_args(argv)
    if args.sites < 1:
        print("--sites must be >= 1", file=sys.stderr)
        return 2
    if args.ticks < 1:
        print("--ticks must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 < args.utilization <= 1.0:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 2
    if args.horizon < 0:
        print("--horizon must be >= 0", file=sys.stderr)
        return 2
    if args.cooling and args.vectorized:
        print("--cooling is incompatible with --vectorized", file=sys.stderr)
        return 2

    from repro.experiments.fig_federation import SOLAR_PEAK, build_specs
    from repro.federation import POLICIES, run_federation
    from repro.metrics.federation import summarize_federation

    if args.policy not in POLICIES:
        print(
            f"--policy must be one of {', '.join(sorted(POLICIES))}",
            file=sys.stderr,
        )
        return 2
    if not POLICIES[args.policy].forecast_aware:
        # Lookahead knobs silently do nothing without the planner;
        # reject them instead of pretending they took effect.
        for flag, given in (
            ("--horizon", args.horizon > 0),
            ("--cooling", args.cooling),
        ):
            if given:
                aware = sorted(
                    name
                    for name, fn in POLICIES.items()
                    if fn.forecast_aware
                )
                print(
                    f"{flag} needs a forecast-aware policy "
                    f"({', '.join(aware)}); {args.policy!r} ignores it",
                    file=sys.stderr,
                )
                return 2
    from repro.federation import resolve_forecast_model

    try:
        forecast = resolve_forecast_model(args.forecast)
    except ValueError as error:
        print(f"--forecast: {error}", file=sys.stderr)
        return 2
    battery_capacity = 0.0
    battery_rate = None
    if args.battery is not None:
        from repro.power import parse_battery_spec

        try:
            spec = parse_battery_spec(args.battery)
        except ValueError as error:
            print(f"--battery: {error}", file=sys.stderr)
            return 2
        battery_capacity = spec.capacity
        battery_rate = spec.max_rate

    specs = build_specs(
        args.sites,
        battery_capacity=battery_capacity,
        battery_rate=battery_rate,
        target_utilization=args.utilization,
        solar_peak=args.solar_peak or SOLAR_PEAK,
        seed=args.seed,
    )
    cooling = None
    if args.cooling:
        from repro.federation import CoolingControl

        cooling = CoolingControl(outside_temp=args.outside_temp)
    tracer = _open_tracer(args.trace)
    coordinator = run_federation(
        specs,
        n_ticks=args.ticks,
        policy=args.policy,
        wan_cost_power=args.wan_cost,
        wan_cost_ticks=args.wan_ticks,
        horizon=args.horizon,
        cooling=cooling,
        forecast=forecast,
        tracer=tracer,
        vectorized=args.vectorized,
    )
    _close_tracer(tracer, args.trace)

    print(
        f"Federated Willow run: {args.sites} site(s), "
        f"policy {args.policy}, U={args.utilization:.0%}, "
        f"{args.ticks} ticks, seed {args.seed}"
        + (f", horizon {args.horizon}" if args.horizon else "")
        + (
            f", forecast {args.forecast}"
            if args.forecast != "oracle"
            else ""
        )
        + (f", battery {args.battery} per site" if args.battery else "")
        + (", cooling actuation on" if args.cooling else "")
    )
    print(summarize_federation(coordinator).format())
    t_limit = max(site.config.thermal.t_limit for site in coordinator.sites)
    worst = max(
        sample.temperature
        for site in coordinator.sites
        for sample in site.collector.server_samples
    )
    print(
        f"thermal safety: worst temperature {worst:.2f} C vs "
        f"T_limit {t_limit:.0f} C "
        f"({'OK' if worst <= t_limit + 1e-6 else 'VIOLATED'})"
    )
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli trace",
        description=(
            "Replay a recorded tick trace: explain one server's budget "
            "at one tick (the allocation path down the tree with the "
            "binding constraint at each level), or summarise the run."
        ),
    )
    parser.add_argument(
        "file", type=str, metavar="FILE",
        help="trace file recorded with --trace (rotated segments found "
             "automatically)",
    )
    parser.add_argument(
        "--server", type=int, default=None, metavar="ID",
        help="server (leaf) node id to explain (default: first leaf)",
    )
    parser.add_argument(
        "--tick", type=int, default=None, metavar="N",
        help="control tick to explain (default: last recorded)",
    )
    parser.add_argument(
        "--run", type=int, default=-1, metavar="I",
        help="which run in the file when it holds several (default: last)",
    )
    parser.add_argument(
        "--histogram", action="store_true",
        help="print the binding-constraint histogram over the whole run",
    )
    parser.add_argument(
        "--level", type=int, default=None, metavar="L",
        help="restrict --histogram to one tree level",
    )
    parser.add_argument(
        "--events", action="store_true",
        help="print plant / control-plane fault edges",
    )
    return parser


def trace_main(argv: List[str]) -> int:
    args = build_trace_parser().parse_args(argv)
    from repro.trace import TraceReader

    try:
        reader = TraceReader(args.file, run=args.run)
    except (OSError, ValueError, IndexError) as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2

    run = reader.run
    did_something = False
    if args.histogram:
        counts = reader.constraint_histogram(level=args.level)
        where = f" at level {args.level}" if args.level is not None else ""
        print(f"binding constraints{where}:")
        for binding, count in sorted(
            counts.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {binding:15s} {count}")
        did_something = True
    if args.events:
        events = reader.events()
        print(f"{len(events)} fault edge(s):")
        for event in events:
            detail = f" ({event['detail']})" if event["detail"] else ""
            print(
                f"  tick {event['tick']:>5} t={event['t']:g}: "
                f"{event['kind']} @ node {event['node']}{detail}"
            )
        did_something = True
    if args.server is not None or args.tick is not None:
        server = args.server
        if server is None:
            leaves = run.leaf_ids()
            if not leaves:
                print("trace: meta frame lists no leaves", file=sys.stderr)
                return 2
            server = leaves[0]
        tick = args.tick if args.tick is not None else reader.last_tick()
        try:
            print(reader.explain(server, tick))
        except (KeyError, ValueError) as error:
            print(f"trace: {error}", file=sys.stderr)
            return 2
        did_something = True
    if not did_something:
        ticks = len(run.frames)
        print(
            f"trace of {run.controller or 'unknown controller'}: "
            f"{len(reader.runs)} run(s), {ticks} tick frame(s) in "
            f"run {args.run}, {len(run.leaf_ids())} servers"
        )
        counts = reader.constraint_histogram()
        total = sum(counts.values()) or 1
        print("binding constraints:")
        for binding, count in sorted(
            counts.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {binding:15s} {count} ({count / total:.0%})")
        events = reader.events()
        print(f"{len(events)} fault edge(s); use --events to list them")
        print(
            "explain a server with: --server ID --tick N "
            f"(servers: {run.leaf_ids()[:6]}..., last tick "
            f"{reader.last_tick() if ticks else 'n/a'})"
        )
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli serve",
        description=(
            "Run Willow-as-a-service: a live controller ticked on the "
            "wall clock, fed by JSON-lines events over TCP through a "
            "bounded queue, with every accepted event recorded in a "
            "replayable audit log (see docs/service.md)."
        ),
    )
    parser.add_argument(
        "audit", type=str, metavar="AUDIT_FILE",
        help="audit log to write (JSONL; replay with "
             "'python -m repro.cli replay AUDIT_FILE')",
    )
    parser.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="listen address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = ephemeral, printed on start)",
    )
    parser.add_argument(
        "--no-listen", action="store_true",
        help="no TCP server; ingest only via the in-process API "
             "(embedding and tests)",
    )
    parser.add_argument(
        "--ticks", type=int, default=None, metavar="N",
        help="stop after N ticks (default: run until SIGINT/SIGTERM)",
    )
    parser.add_argument(
        "--tick-seconds", type=float, default=None, metavar="S",
        help="wall-clock seconds per control tick (default: the "
             "config's delta_d = 1 s)",
    )
    parser.add_argument(
        "--queue-bound", type=int, default=8192, metavar="N",
        help="max events pending between ticks; beyond it the gateway "
             "rejects with 429 + retry_after (default 8192)",
    )
    parser.add_argument(
        "--controller", type=str, default="scalar",
        choices=("scalar", "vectorized"),
        help="embedded controller: scalar accepts live fault events, "
             "vectorized is faster at large fleets (default scalar)",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.5,
        help="initial fleet utilization in (0, 1] (default 0.5)",
    )
    parser.add_argument(
        "--vms-per-server", type=int, default=4, metavar="N",
        help="initial VMs per server (0 = start empty; default 4)",
    )
    parser.add_argument(
        "--branching", type=str, default=None, metavar="A,B,C",
        help="custom balanced tree, e.g. 3,3,3 (default: paper's 2,3,3)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--supply-factor", type=float, default=1.0,
        help="initial root budget as a multiple of fleet circuit "
             "capacity (supply_update events change it live)",
    )
    parser.add_argument(
        "--outside", type=float, default=35.0, metavar="DEGC",
        help="outside air temperature for cooling derates",
    )
    parser.add_argument(
        "--fsync", action="store_true",
        help="fsync the audit log at every tick boundary (crash-"
             "durable, costs a disk round-trip per tick)",
    )
    parser.add_argument(
        "--load", type=int, default=None, metavar="N",
        help="self-load: drive N events through the TCP gateway from "
             "an in-process load generator (smoke runs / benchmarks)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        help="write periodic hash-verified checkpoints of the live "
             "simulation into DIR (crash recovery: serve --recover)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint cadence in ticks (default: the config's "
             "eta2 consolidation cadence)",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="crash recovery: restore the latest valid checkpoint from "
             "--checkpoint-dir (default AUDIT_FILE.ckpt), replay the "
             "audit tail, and continue the run appending to the same "
             "audit log; spec flags are taken from the audit meta, and "
             "--ticks means additional ticks",
    )
    return parser


def serve_main(argv: List[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    if args.ticks is not None and args.ticks < 1:
        print("--ticks must be >= 1", file=sys.stderr)
        return 2
    if args.tick_seconds is not None and args.tick_seconds <= 0:
        print("--tick-seconds must be positive", file=sys.stderr)
        return 2
    if args.queue_bound < 1:
        print("--queue-bound must be >= 1", file=sys.stderr)
        return 2
    if args.load is not None and (args.load < 1 or args.no_listen):
        print(
            "--load needs a positive count and the TCP server "
            "(drop --no-listen)",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_every is not None:
        if args.checkpoint_every < 1:
            print("--checkpoint-every must be >= 1", file=sys.stderr)
            return 2
        if args.checkpoint_dir is None and not args.recover:
            print(
                "--checkpoint-every needs --checkpoint-dir", file=sys.stderr
            )
            return 2
    error = _missing_parent(args.audit, "audit path")
    if error:
        print(error, file=sys.stderr)
        return 2
    branching = None
    if args.branching:
        try:
            branching = tuple(int(x) for x in args.branching.split(","))
        except ValueError:
            print("--branching must be comma-separated ints", file=sys.stderr)
            return 2

    import asyncio
    import signal

    from repro.checkpoint import CheckpointError, CheckpointStore
    from repro.metrics import summarize_run
    from repro.service import (
        AuditLog,
        IngestGateway,
        LiveRunner,
        LiveSimulation,
        ServiceSpec,
        generate_load,
    )

    checkpoint_dir = args.checkpoint_dir
    if args.recover:
        # The crashed run's spec lives in its audit meta; CLI spec
        # flags (seed, controller, ...) are not consulted.
        if checkpoint_dir is None:
            checkpoint_dir = f"{args.audit}.ckpt"
        from repro.service import AuditRecordError, recover_simulation

        try:
            recovery = recover_simulation(args.audit, checkpoint_dir)
        except FileNotFoundError as error:
            print(f"serve --recover: {error}", file=sys.stderr)
            return 2
        except (AuditRecordError, CheckpointError) as error:
            print(f"serve --recover: {error}", file=sys.stderr)
            return 2
        print(recovery.format(), flush=True)
        sim = recovery.sim
        max_ticks = sim.tick + args.ticks if args.ticks is not None else None
    else:
        try:
            spec = ServiceSpec(
                seed=args.seed,
                controller=args.controller,
                branching=branching,
                utilization=args.utilization,
                vms_per_server=args.vms_per_server,
                supply_factor=args.supply_factor,
                outside_temp=args.outside,
            )
        except ValueError as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        sim = LiveSimulation(spec)
        max_ticks = args.ticks
    if args.load is not None and not sim.n_vms:
        print("--load needs an initial fleet (--vms-per-server > 0)",
              file=sys.stderr)
        return 2
    gateway = IngestGateway(
        queue_bound=args.queue_bound, allow_faults=sim.allow_faults
    )
    audit = AuditLog(args.audit, fsync=args.fsync, append=args.recover)
    checkpoints = (
        CheckpointStore(checkpoint_dir, fsync=args.fsync)
        if checkpoint_dir is not None
        else None
    )
    runner = LiveRunner(
        sim,
        gateway,
        audit,
        tick_seconds=args.tick_seconds,
        max_ticks=max_ticks,
        checkpoints=checkpoints,
        checkpoint_every=args.checkpoint_every,
        write_meta=not args.recover,
    )

    async def run():
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, runner.request_stop)
            except (NotImplementedError, RuntimeError):
                signal.signal(signum, lambda *_: runner.request_stop())
        server = None
        load_task = None
        if not args.no_listen:
            server = await gateway.start_server(args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(f"serving on {host}:{port} (audit -> {args.audit})",
                  flush=True)
            if args.load is not None:
                load_task = asyncio.ensure_future(
                    generate_load(
                        host,
                        port,
                        sorted(sim.controller._vm_by_id),
                        total_events=args.load,
                        source="self-load",
                    )
                )
        report = await runner.run()
        if load_task is not None:
            load = await load_task
            print(
                f"self-load: offered {load.offered}, accepted "
                f"{load.accepted}, {load.rejected_full} backpressured "
                f"({load.accepted_per_sec:.0f} accepted events/s)"
            )
        if server is not None:
            server.close()
            await server.wait_closed()
        return report

    report = asyncio.run(run())
    print(report.format())
    print(summarize_run(sim.collector).format())
    return 0


def build_replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli replay",
        description=(
            "Re-execute a live run's audit log offline and verify "
            "bit-exact parity with the recorded decision digest."
        ),
    )
    parser.add_argument(
        "file", type=str, metavar="AUDIT_FILE",
        help="audit log written by 'serve' (rotated segments found "
             "automatically)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="also print the replayed run's metrics summary",
    )
    return parser


def replay_main(argv: List[str]) -> int:
    args = build_replay_parser().parse_args(argv)
    from repro.service import AuditRecordError, replay

    try:
        result = replay(args.file)
    except (FileNotFoundError, AuditRecordError) as error:
        print(f"replay: {error}", file=sys.stderr)
        return 2
    print(result.format())
    if args.summary:
        from repro.metrics import summarize_run

        print(summarize_run(result.collector).format())
    return 1 if result.parity is False else 0


def _build_resumable_run(
    *,
    seed: int,
    vectorized: bool,
    utilization: float,
    branching,
    supply_factor: float,
    vms_per_server: int,
):
    """A batch controller built exactly as ``checkpoint``/``resume`` need:
    the same (tree, supply, placement, seed) recipe on both sides is
    what makes restore-onto-a-fresh-twin bit-exact."""
    from repro.core import WillowConfig, WillowController
    from repro.core.vectorized import VectorizedWillowController
    from repro.power import constant_supply
    from repro.sim import RandomStreams
    from repro.topology import build_balanced, build_paper_simulation
    from repro.workload import (
        SIMULATION_APPS,
        random_placement,
        scale_for_target_utilization,
    )

    tree = (
        build_balanced([int(b) for b in branching])
        if branching
        else build_paper_simulation()
    )
    servers = tree.servers()
    config = WillowConfig()
    supply = constant_supply(
        supply_factor * len(servers) * config.circuit_limit
    )
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in servers],
        SIMULATION_APPS,
        streams["placement"],
        vms_per_server=vms_per_server,
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, utilization
    )
    cls = VectorizedWillowController if vectorized else WillowController
    return cls(tree, config, supply, placement, seed=seed)


def build_checkpoint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli checkpoint",
        description=(
            "Run a batch Willow simulation while writing periodic "
            "hash-verified checkpoints; resume it bit-exactly with "
            "'python -m repro.cli resume DIR' (see docs/checkpointing.md)."
        ),
    )
    parser.add_argument(
        "dir", type=str, metavar="DIR",
        help="checkpoint directory (created if absent)",
    )
    parser.add_argument(
        "--ticks", type=int, default=100, help="control ticks to run"
    )
    parser.add_argument(
        "--every", type=int, default=None, metavar="N",
        help="checkpoint cadence in ticks (default: the config's eta2 "
             "consolidation cadence)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--vectorized", action="store_true",
        help="use the array-based controller",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.5,
        help="target mean utilization in (0, 1] (default 0.5)",
    )
    parser.add_argument(
        "--branching", type=str, default=None, metavar="A,B,C",
        help="custom balanced tree, e.g. 3,3,3 (default: paper's 2,3,3)",
    )
    parser.add_argument(
        "--supply-factor", type=float, default=1.0,
        help="supply as a multiple of fleet circuit capacity",
    )
    parser.add_argument(
        "--vms-per-server", type=int, default=4, metavar="N",
        help="initial VMs per server (default 4)",
    )
    parser.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="retain only the newest N checkpoints (default: all)",
    )
    parser.add_argument(
        "--fsync", action="store_true",
        help="fsync every checkpoint (crash-durable)",
    )
    return parser


def checkpoint_main(argv: List[str]) -> int:
    args = build_checkpoint_parser().parse_args(argv)
    if args.ticks < 1:
        print("--ticks must be >= 1", file=sys.stderr)
        return 2
    if args.every is not None and args.every < 1:
        print("--every must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 < args.utilization <= 1.0:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 2
    branching = None
    if args.branching:
        try:
            branching = tuple(int(x) for x in args.branching.split(","))
        except ValueError:
            print("--branching must be comma-separated ints", file=sys.stderr)
            return 2

    from repro.checkpoint import CheckpointStore, Checkpointer
    from repro.metrics import summarize_run
    from repro.service.simulation import decision_digest

    controller = _build_resumable_run(
        seed=args.seed,
        vectorized=args.vectorized,
        utilization=args.utilization,
        branching=branching,
        supply_factor=args.supply_factor,
        vms_per_server=args.vms_per_server,
    )
    store = CheckpointStore(args.dir, fsync=args.fsync, keep=args.keep)
    # The meta rides inside every checkpoint header so `resume` can
    # rebuild the identical twin without any side-channel.
    meta = {
        "ticks": args.ticks,
        "seed": args.seed,
        "vectorized": args.vectorized,
        "utilization": args.utilization,
        "branching": list(branching) if branching else None,
        "supply_factor": args.supply_factor,
        "vms_per_server": args.vms_per_server,
    }
    checkpointer = Checkpointer(store, every=args.every, meta=meta)
    checkpointer.attach(controller)
    collector = controller.run(args.ticks)
    print(
        f"checkpointed run: {args.ticks} tick(s), seed {args.seed}, "
        f"{len(checkpointer.saved)} checkpoint(s) at ticks "
        f"{checkpointer.saved} -> {args.dir}"
    )
    print(f"decision digest: {decision_digest(collector)}")
    print(summarize_run(collector).format())
    return 0


def build_resume_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli resume",
        description=(
            "Resume a checkpointed batch run from its latest valid "
            "checkpoint (corrupt files are skipped) and run it to "
            "completion; the decision digest matches an uninterrupted "
            "run bit-exactly."
        ),
    )
    parser.add_argument(
        "dir", type=str, metavar="DIR",
        help="checkpoint directory written by 'checkpoint'",
    )
    parser.add_argument(
        "--at", type=int, default=None, metavar="TICK",
        help="resume from the checkpoint at this exact tick instead of "
             "the latest valid one",
    )
    parser.add_argument(
        "--ticks", type=int, default=None, metavar="N",
        help="total ticks to run to (default: the run length recorded "
             "when the checkpoints were written)",
    )
    return parser


def resume_main(argv: List[str]) -> int:
    args = build_resume_parser().parse_args(argv)
    from pathlib import Path

    from repro.checkpoint import (
        CheckpointCorruptError,
        CheckpointError,
        CheckpointStore,
    )
    from repro.metrics import summarize_run
    from repro.service.simulation import decision_digest

    if not Path(args.dir).is_dir():
        print(
            f"resume: {args.dir} is not a directory (run "
            f"'python -m repro.cli checkpoint {args.dir}' first?)",
            file=sys.stderr,
        )
        return 2
    store = CheckpointStore(args.dir)
    try:
        if args.at is not None:
            document = store.load(args.at)
        else:
            document = store.latest_valid()
    except (FileNotFoundError, PermissionError) as error:
        print(f"resume: {error}", file=sys.stderr)
        return 2
    except CheckpointCorruptError as error:
        print(f"resume: corrupt checkpoint: {error}", file=sys.stderr)
        return 2
    except CheckpointError as error:
        print(f"resume: {error}", file=sys.stderr)
        return 2
    if document is None:
        print(
            f"resume: no valid checkpoint found in {args.dir}",
            file=sys.stderr,
        )
        return 2
    for path, reason in document.get("skipped", ()):
        print(f"resume: skipped corrupt checkpoint {path}: {reason}")
    meta = document["meta"]
    required = ("ticks", "seed", "vectorized", "utilization",
                "supply_factor", "vms_per_server")
    if any(key not in meta for key in required):
        print(
            f"resume: checkpoint at tick {document['tick']} has no "
            f"rebuild recipe in its meta (written by 'checkpoint'? "
            f"service checkpoints are resumed with 'serve --recover')",
            file=sys.stderr,
        )
        return 2
    total_ticks = args.ticks if args.ticks is not None else meta["ticks"]
    if total_ticks < document["tick"]:
        print(
            f"resume: --ticks {total_ticks} is before the checkpoint "
            f"at tick {document['tick']}",
            file=sys.stderr,
        )
        return 2
    controller = _build_resumable_run(
        seed=meta["seed"],
        vectorized=meta["vectorized"],
        utilization=meta["utilization"],
        branching=meta.get("branching"),
        supply_factor=meta["supply_factor"],
        vms_per_server=meta["vms_per_server"],
    )
    try:
        controller.restore_state(document["state"])
    except CheckpointError as error:
        print(f"resume: {error}", file=sys.stderr)
        return 2
    remaining = total_ticks - document["tick"]
    print(
        f"resumed from checkpoint at tick {document['tick']} "
        f"({document['path']}); running {remaining} more tick(s)"
    )
    collector = controller.run(remaining)
    print(f"decision digest: {decision_digest(collector)}")
    print(summarize_run(collector).format())
    return 0


def build_gym_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli gym",
        description=(
            "Train learned federation schedulers in the gym environment "
            "and score them against the shipped policies on one "
            "scenario (see docs/gym.md)."
        ),
    )
    parser.add_argument(
        "--sites", type=int, default=2, metavar="N",
        help="federation size (default 2)",
    )
    parser.add_argument(
        "--windows", type=int, default=23, metavar="W",
        help="decision windows per episode (default 23 = one solar day)",
    )
    parser.add_argument(
        "--horizon", type=int, default=4, metavar="K",
        help="forecast steps in the observation (default 4)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scenario seed (default 0)"
    )
    parser.add_argument(
        "--agent-seed", type=int, default=0,
        help="agent RNG seed (default 0)",
    )
    parser.add_argument(
        "--iterations", type=int, default=2, metavar="I",
        help="CEM iterations (default 2)",
    )
    parser.add_argument(
        "--population", type=int, default=6, metavar="P",
        help="CEM population per iteration (default 6)",
    )
    parser.add_argument(
        "--episodes", type=int, default=4, metavar="E",
        help="bandit training episodes (default 4)",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.35,
        help="per-site target mean utilization in (0, 1] (default 0.35)",
    )
    parser.add_argument(
        "--battery", type=float, default=0.0, metavar="CAPACITY",
        help="per-site UPS capacity in W*ticks (default 0 = none)",
    )
    parser.add_argument(
        "--forecast", type=str, default="oracle", metavar="SPEC",
        help="forecast model behind the observations (default oracle)",
    )
    parser.add_argument(
        "--no-bandit", action="store_true",
        help="skip the policy-switching bandit rows",
    )
    return parser


def gym_main(argv: List[str]) -> int:
    args = build_gym_parser().parse_args(argv)
    if args.sites < 1:
        print("--sites must be >= 1", file=sys.stderr)
        return 2
    if args.windows < 1:
        print("--windows must be >= 1", file=sys.stderr)
        return 2
    if args.horizon < 0:
        print("--horizon must be >= 0", file=sys.stderr)
        return 2
    if args.iterations < 1:
        print("--iterations must be >= 1", file=sys.stderr)
        return 2
    if args.population < 2:
        print("--population must be >= 2", file=sys.stderr)
        return 2
    if not 0.0 < args.utilization <= 1.0:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 2
    if args.battery < 0:
        print("--battery must be >= 0", file=sys.stderr)
        return 2
    from repro.federation import resolve_forecast_model

    try:
        resolve_forecast_model(args.forecast)
    except ValueError as error:
        print(f"--forecast: {error}", file=sys.stderr)
        return 2

    from repro.gym import GymConfig, compare

    config = GymConfig(
        n_sites=args.sites,
        windows=args.windows,
        horizon=args.horizon,
        target_utilization=args.utilization,
        battery_capacity=args.battery,
        forecast=args.forecast,
    )
    rows = compare(
        config,
        scenario_seed=args.seed,
        agent_seed=args.agent_seed,
        iterations=args.iterations,
        population=args.population,
        bandit_episodes=args.episodes,
        with_bandit=not args.no_bandit,
    )
    print(
        f"Gym schedulers: {args.sites} site(s), {args.windows} windows, "
        f"K={args.horizon}, scenario seed {args.seed}"
        + (f", forecast {args.forecast}" if args.forecast != "oracle" else "")
    )
    print(
        f"{'scheduler':>16}  {'dropped':>10}  {'WAN energy':>10}  "
        f"{'moves':>5}  {'violations':>10}  notes"
    )
    for name, row in rows.items():
        notes = ""
        if "theta" in row:
            notes = (
                f"theta=({row['theta'][0]:.2f}, {row['theta'][1]:.2f})"
            )
        if "arm" in row:
            notes = f"arm={row['arm']}"
        print(
            f"{name:>16}  {row['dropped']:>10.0f}  "
            f"{row['wan_energy']:>10.0f}  {row['moves']:>5}  "
            f"{row['violations']:>10.0f}  {notes}"
        )
    violations = sum(row["violations"] for row in rows.values())
    print(
        f"thermal safety: {'OK' if violations == 0 else 'VIOLATED'} "
        f"({violations:.0f} violation ticks across all schedulers)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    if argv and argv[0] == "degraded":
        return degraded_main(argv[1:])
    if argv and argv[0] == "resilience":
        return resilience_main(argv[1:])
    if argv and argv[0] == "federation":
        return federation_main(argv[1:])
    if argv and argv[0] == "gym":
        return gym_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "replay":
        return replay_main(argv[1:])
    if argv and argv[0] == "checkpoint":
        return checkpoint_main(argv[1:])
    if argv and argv[0] == "resume":
        return resume_main(argv[1:])
    args = build_parser().parse_args(argv)
    if not 0.0 < args.utilization <= 1.0:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 2
    if args.ticks < 1:
        print("--ticks must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 <= args.supply_dip < 1.0:
        print("--supply-dip must be in [0, 1)", file=sys.stderr)
        return 2

    from repro.core import WillowConfig, WillowController
    from repro.core.vectorized import VectorizedWillowController
    from repro.metrics import summarize_run
    from repro.power import constant_supply, step_supply
    from repro.sim import RandomStreams
    from repro.topology import build_balanced, build_paper_simulation
    from repro.workload import (
        SIMULATION_APPS,
        random_placement,
        scale_for_target_utilization,
    )

    if args.branching:
        try:
            branching = [int(x) for x in args.branching.split(",")]
        except ValueError:
            print("--branching must be comma-separated ints", file=sys.stderr)
            return 2
        tree = build_balanced(branching)
    else:
        tree = build_paper_simulation()
    servers = tree.servers()

    overrides = {}
    config_kwargs = {}
    if args.no_consolidation:
        config_kwargs["consolidation_enabled"] = False
    if args.p_min is not None:
        config_kwargs["p_min"] = args.p_min
    config = WillowConfig(**config_kwargs)

    if args.hot:
        if args.hot > len(servers):
            print("--hot exceeds server count", file=sys.stderr)
            return 2
        overrides = {s.name: 40.0 for s in servers[-args.hot:]}

    nominal = args.supply_factor * len(servers) * config.circuit_limit
    if args.supply_csv:
        from repro.power import supply_from_csv

        try:
            supply = supply_from_csv(args.supply_csv)
        except (OSError, ValueError) as error:
            print(f"--supply-csv: {error}", file=sys.stderr)
            return 2
    elif args.supply_dip > 0:
        dip_at = args.dip_at if args.dip_at is not None else args.ticks // 2
        supply = step_supply(
            [(0.0, nominal), (float(dip_at), nominal * (1 - args.supply_dip))]
        )
    else:
        supply = constant_supply(nominal)

    if args.battery is not None:
        from repro.power import buffer_supply, parse_battery_spec

        try:
            battery = parse_battery_spec(args.battery).build()
        except ValueError as error:
            print(f"--battery: {error}", file=sys.stderr)
            return 2
        supply = buffer_supply(
            supply,
            battery,
            duration=args.ticks * config.delta_d,
            dt=config.delta_d,
        )

    streams = RandomStreams(args.seed)
    placement = random_placement(
        [s.node_id for s in servers], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, args.utilization
    )
    controller_cls = (
        VectorizedWillowController if args.vectorized else WillowController
    )
    tracer = _open_tracer(args.trace)
    controller = controller_cls(
        tree, config, supply, placement,
        ambient_overrides=overrides, seed=args.seed, tracer=tracer,
    )
    collector = controller.run(args.ticks)
    _close_tracer(tracer, args.trace)

    print(
        f"Willow run: {len(servers)} servers, U={args.utilization:.0%}, "
        f"{args.ticks} ticks, seed {args.seed}"
        + (f", hot zone on last {args.hot}" if args.hot else "")
    )
    print(summarize_run(collector).format())

    if args.export_csv:
        from repro.metrics.export import export_csv

        written = export_csv(collector, args.export_csv)
        print(f"wrote {len(written)} CSV files to {args.export_csv}")
    if args.export_json:
        from repro.metrics.export import export_json

        path = export_json(collector, args.export_json)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
