"""Runtime state attached to hierarchy nodes during a Willow run.

Two flavours:

* :class:`ServerRuntime` -- leaf servers: hosted VMs, thermal
  integrator, sleep state, demand smoother, temporary migration costs.
* :class:`NodeRuntime` -- internal PMU nodes: aggregated smoothed
  demand, budget, and the budget-reduced flag the unidirectional rule
  consults.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.core.config import WillowConfig
from repro.power.smoothing import ExponentialSmoother
from repro.thermal.model import TemperatureIntegrator, ThermalParams
from repro.topology.tree import Node
from repro.workload.vm import VM

__all__ = ["SleepState", "ServerRuntime", "NodeRuntime"]


class SleepState(enum.Enum):
    """Server activity state (S3/S4 sleep per Sec. IV-C)."""

    AWAKE = "awake"
    ASLEEP = "asleep"
    WAKING = "waking"
    #: Hard-stopped by a crash or thermal emergency (plant-fault layer).
    #: Unlike ASLEEP the server may still hold VMs awaiting evacuation.
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class NodeRuntime:
    """Control state for one internal PMU node."""

    def __init__(self, node: Node, config: WillowConfig):
        self.node = node
        self.budget: float = 0.0
        self.previous_budget: float = 0.0
        self.smoother = ExponentialSmoother(config.alpha)
        self.smoothed_demand: float = 0.0
        self.budget_reduced: bool = False

    def observe_demand(self, demand: float) -> float:
        """Absorb this tick's aggregated child demand (Eq. 4)."""
        self.smoothed_demand = self.smoother.update(demand)
        return self.smoothed_demand

    def set_budget(self, budget: float) -> None:
        """Apply a supply-side budget update, tracking reductions."""
        self.previous_budget = self.budget
        self.budget = float(budget)
        self.budget_reduced = self.budget < self.previous_budget - 1e-9


class ServerRuntime:
    """Control and physical state for one leaf server."""

    def __init__(
        self,
        node: Node,
        config: WillowConfig,
        thermal_params: Optional[ThermalParams] = None,
    ):
        self.node = node
        self.config = config
        self.model = config.server_model
        self.thermal_params = thermal_params or config.thermal
        self.thermal = TemperatureIntegrator(self.thermal_params)
        self.thermal_window = config.resolved_thermal_window()
        self.devices = None
        if config.device_classes is not None:
            from repro.devices.model import DeviceSet

            self.devices = DeviceSet(
                config.device_classes,
                t_ambient=self.thermal_params.t_ambient,
            )
        self.smoother = ExponentialSmoother(config.alpha)
        self.vms: Dict[int, VM] = {}
        self.budget: float = 0.0
        self.previous_budget: float = 0.0
        self.budget_reduced: bool = False
        self.sleep_state = SleepState.AWAKE
        self.wake_ticks_left: int = 0
        # Temporary migration-cost demand: remaining-ticks -> watts.
        self._pending_costs: Dict[int, float] = {}
        self.raw_demand: float = 0.0
        self.smoothed_demand: float = 0.0
        self.served_power: float = 0.0  # dynamic watts served this tick
        self.asleep_ticks: int = 0
        self.failed_ticks: int = 0

    # -- demand ------------------------------------------------------------
    @property
    def vm_demand(self) -> float:
        """Aggregate demand (W) of currently hosted VMs this tick."""
        return sum(vm.current_demand for vm in self.vms.values())

    @property
    def migration_cost_demand(self) -> float:
        """Temporary demand from in-flight migration costs (W)."""
        return sum(self._pending_costs.values())

    def observe_demand(self) -> float:
        """Compute and smooth this tick's *wall* power demand.

        All node-level quantities (demands, budgets, surpluses) are
        measured in wall watts; VM demands are dynamic watts on top of
        the static floor an awake server always pays.
        """
        if self.sleep_state is SleepState.FAILED:
            # A crashed server draws nothing and wants nothing; its
            # smoothed demand decays so allocations flow elsewhere.
            self.raw_demand = 0.0
        elif self.sleep_state is SleepState.ASLEEP:
            self.raw_demand = self.model.standby_power
        elif self.sleep_state is SleepState.WAKING:
            # Keep reporting the wake forecast (primed at begin_wake)
            # so the next allocation reserves the ramp-in budget; the
            # hardware itself only draws the static floor meanwhile.
            self.raw_demand = self.model.static_power
            return self.smoothed_demand
        else:
            self.raw_demand = (
                self.model.static_power
                + self.vm_demand
                + self.migration_cost_demand
            )
        self.smoothed_demand = self.smoother.update(self.raw_demand)
        return self.smoothed_demand

    def charge_migration_cost(self, watts: float, ticks: int) -> None:
        """Add a temporary power demand for ``ticks`` future ticks."""
        if watts <= 0 or ticks <= 0:
            return
        self._pending_costs[ticks] = self._pending_costs.get(ticks, 0.0) + watts

    def expire_costs(self) -> None:
        """Advance migration-cost bookkeeping by one tick."""
        if not self._pending_costs:
            return
        self._pending_costs = {
            ticks - 1: watts
            for ticks, watts in self._pending_costs.items()
            if ticks - 1 > 0
        }

    # -- budgets -----------------------------------------------------------
    def set_budget(self, budget: float) -> None:
        self.previous_budget = self.budget
        self.budget = float(budget)
        self.budget_reduced = self.budget < self.previous_budget - 1e-9

    def hard_cap(self, temperature: Optional[float] = None) -> float:
        """Hard constraint: min(thermal cap, circuit rating) in watts.

        In ``window_reset`` mode the thermal cap is the constant zone
        cap (Eq. 3 evaluated at the zone ambient) -- e.g. 450 W for the
        25 C zone and 300 W for the 40 C zone with the paper's
        constants.  In ``integrated`` mode it depends on the current
        integrated temperature.

        ``temperature`` overrides the Eq. 3 starting temperature ``t0``
        (both modes): the sensor-fault layer passes its *believed*
        temperature here, which may be more pessimistic than the plant
        truth while a sensor is quarantined.
        """
        cap = self.config.circuit_limit
        if self.config.thermal_enabled:
            from repro.thermal.model import power_cap

            if self.devices is not None:
                return min(cap, self.devices.server_cap())
            if self.config.thermal_mode == "window_reset":
                t0 = (
                    self.thermal_params.t_ambient
                    if temperature is None
                    else temperature
                )
                thermal_cap = power_cap(
                    self.thermal_params, t0, self.thermal_window
                )
            elif temperature is None:
                thermal_cap = self.thermal.power_cap(self.thermal_window)
            else:
                thermal_cap = power_cap(
                    self.thermal_params, temperature, self.thermal_window
                )
            cap = min(cap, thermal_cap)
        return cap

    def set_ambient(self, t_ambient: float) -> None:
        """Move this server's inlet ambient (cooling degradation).

        Callers must keep ``t_ambient`` strictly below ``t_limit``
        (:class:`ThermalParams` rejects anything else).
        """
        self.thermal_params = self.thermal_params.with_ambient(t_ambient)
        self.thermal.params = self.thermal_params

    def update_temperature(self, wall_power: float, dt: float) -> float:
        """Advance the server temperature given this tick's wall power."""
        from repro.thermal.model import temperature_after

        if self.devices is not None:
            self.devices.update(wall_power)

        if self.config.thermal_mode == "window_reset":
            # Paper Sec. V-B2: temperature settles within the window, so
            # each tick re-derives it from ambient at the tick's power.
            self.thermal.temperature = temperature_after(
                self.thermal_params,
                self.thermal_params.t_ambient,
                wall_power,
                self.thermal_window,
            )
            if self.thermal.temperature > self.thermal.peak:
                self.thermal.peak = self.thermal.temperature
            if self.thermal.temperature > self.thermal_params.t_limit + 1e-6:
                self.thermal.violations += 1
            return self.thermal.temperature
        return self.thermal.step(wall_power, dt)

    @property
    def temperature(self) -> float:
        """Current component temperature (deg C)."""
        return self.thermal.temperature

    # -- power -------------------------------------------------------------
    @property
    def is_awake(self) -> bool:
        return self.sleep_state is SleepState.AWAKE

    @property
    def utilization(self) -> float:
        """Fraction of the dynamic power range in use this tick."""
        if not self.is_awake:
            return 0.0
        return min(self.served_power / self.model.slope, 1.0)

    def actual_power(self) -> float:
        """Wall power this tick: static floor + served dynamic demand,
        or standby draw while asleep/waking."""
        if self.sleep_state is SleepState.FAILED:
            return 0.0
        if self.sleep_state is SleepState.ASLEEP:
            return self.model.standby_power
        if self.sleep_state is SleepState.WAKING:
            # Waking hardware draws the static floor but serves nothing.
            return self.model.static_power
        return self.model.static_power + self.served_power

    # -- sleep management ----------------------------------------------------
    def sleep(self) -> None:
        if self.vms:
            raise RuntimeError(
                f"{self.node.name} cannot sleep while hosting {len(self.vms)} VMs"
            )
        self.sleep_state = SleepState.ASLEEP
        self.served_power = 0.0

    def begin_wake(self) -> None:
        if self.sleep_state is not SleepState.ASLEEP:
            raise RuntimeError(f"{self.node.name} is not asleep")
        if self.config.wake_latency_ticks == 0:
            self.sleep_state = SleepState.AWAKE
        else:
            self.sleep_state = SleepState.WAKING
            self.wake_ticks_left = self.config.wake_latency_ticks

    def tick_wake(self) -> None:
        """Advance wake latency; call once per tick."""
        if self.sleep_state is SleepState.WAKING:
            self.wake_ticks_left -= 1
            if self.wake_ticks_left <= 0:
                self.sleep_state = SleepState.AWAKE
        elif self.sleep_state is SleepState.ASLEEP:
            self.asleep_ticks += 1
        elif self.sleep_state is SleepState.FAILED:
            self.failed_ticks += 1

    def fail(self) -> None:
        """Hard-stop this server (crash or thermal emergency).

        Unlike :meth:`sleep` this tolerates hosted VMs -- a crash does
        not wait for a drain.  The VMs stay attached so the controller
        can evacuate them; wall power drops to zero immediately and any
        in-flight migration-cost demand is forgotten with the host.
        """
        self.sleep_state = SleepState.FAILED
        self.served_power = 0.0
        self.wake_ticks_left = 0
        self._pending_costs = {}

    def repair(self) -> None:
        """Begin restart after a failure.

        Re-admission pays the same S3/S4 resume latency as a wake from
        sleep (Sec. IV-C): the server transitions FAILED -> WAKING and
        becomes AWAKE after ``wake_latency_ticks`` ticks.
        """
        if self.sleep_state is not SleepState.FAILED:
            raise RuntimeError(f"{self.node.name} is not failed")
        if self.config.wake_latency_ticks == 0:
            self.sleep_state = SleepState.AWAKE
        else:
            self.sleep_state = SleepState.WAKING
            self.wake_ticks_left = self.config.wake_latency_ticks
