"""The Willow controller (paper Sec. IV): hierarchical, unidirectional
supply/demand coordination with thermal-aware budgets, FFDLR demand
matching, margin-guarded migrations and consolidation.

Public entry points:

* :class:`~repro.core.config.WillowConfig` -- all tunables with the
  paper's defaults.
* :class:`~repro.core.controller.WillowController` -- builds the full
  simulated data center (tree + switches + workload + thermal state)
  and runs the discrete-time control loop on the DES kernel.
* :func:`~repro.core.controller.run_willow` -- one-call convenience
  wrapper returning a :class:`~repro.metrics.collector.MetricsCollector`.
"""

from repro.core.config import WillowConfig
from repro.core.events import (
    BudgetChange,
    ControlMessage,
    Drop,
    Migration,
    MigrationCause,
)
from repro.core.state import NodeRuntime, ServerRuntime, SleepState
from repro.core.deficits import power_deficit, power_imbalance, power_surplus
from repro.core.controller import WillowController, run_willow

__all__ = [
    "BudgetChange",
    "ControlMessage",
    "Drop",
    "Migration",
    "MigrationCause",
    "NodeRuntime",
    "ServerRuntime",
    "SleepState",
    "WillowConfig",
    "WillowController",
    "power_deficit",
    "power_imbalance",
    "power_surplus",
    "run_willow",
]
