"""Struct-of-arrays view of a server fleet for the vectorized tick path.

:class:`FleetState` mirrors a fixed, ordered list of
:class:`~repro.core.state.ServerRuntime` objects into flat NumPy arrays:
immutable per-server parameters (static/standby power, dynamic range,
thermal constants, precomputed exponential decay factors) are captured
once at construction, while mutable control state (sleep flags, pending
migration costs, smoother lanes, budgets, temperatures) is re-gathered
from the objects at the top of every tick.

The objects stay authoritative between ticks: planners, consolidation
and user hooks keep mutating ``ServerRuntime`` exactly as in the scalar
controller, and the arrays are an ephemeral compute workspace.  This
keeps the vectorized controller a drop-in behavioural twin -- see
docs/performance.md for the layout and the equivalence contract.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.config import WillowConfig
from repro.core.state import ServerRuntime, SleepState
from repro.power.smoothing import VectorSmoother
from repro.thermal.model import power_cap_arrays

__all__ = [
    "FleetState",
    "FederationFleet",
    "fold_segment_sums",
    "build_fold_index",
]


def build_fold_index(sizes: np.ndarray) -> tuple:
    """Padded (group, slot) index matrices for :func:`fold_segment_sums`.

    ``sizes`` holds each group's child count over a flat, group-ordered
    array.  Returns ``(pad_idx, valid)`` where ``pad_idx[g, j]`` is the
    flat index of group ``g``'s ``j``-th element (0 where absent) and
    ``valid`` masks real slots.
    """
    sizes = np.asarray(sizes, dtype=np.intp)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.intp)
    max_size = int(sizes.max()) if len(sizes) else 0
    slots = np.arange(max_size)
    valid = slots[None, :] < sizes[:, None]
    pad_idx = np.where(valid, offsets[:, None] + slots[None, :], 0)
    return pad_idx, valid


def fold_segment_sums(
    values: np.ndarray, pad_idx: np.ndarray, valid: np.ndarray
) -> np.ndarray:
    """Per-group sums as a left-to-right fold across slot columns.

    Matches the accumulation order of Python's ``sum()`` (and NumPy's
    ``.sum()`` below its pairwise threshold) on each group, so results
    are bit-identical to the scalar controller's per-node loops --
    unlike ``np.add.reduceat``, whose SIMD accumulation reorders at the
    ulp level.
    """
    padded = np.where(valid, values[pad_idx], 0.0)
    if padded.shape[1] == 0:
        return np.zeros(len(pad_idx))
    acc = padded[:, 0].copy()
    for j in range(1, padded.shape[1]):
        acc += padded[:, j]
    return acc


class FleetState:
    """Array mirror of an ordered server fleet.

    Parameters
    ----------
    servers:
        Server runtimes in a fixed order (the controller uses
        ``tree.servers()`` order, which matches its ``servers`` dict's
        insertion order).
    config:
        The run configuration; supplies ``alpha``, tick length and
        thermal mode.
    """

    def __init__(self, servers: List[ServerRuntime], config: WillowConfig):
        self.servers = list(servers)
        self.config = config
        n = len(self.servers)
        self.n = n
        #: node_id -> row index
        self.index: Dict[int, int] = {
            s.node.node_id: i for i, s in enumerate(self.servers)
        }
        self.node_ids = np.array(
            [s.node.node_id for s in self.servers], dtype=np.intp
        )

        # -- immutable per-server parameters -----------------------------
        self.static_power = np.array(
            [s.model.static_power for s in self.servers]
        )
        self.standby_power = np.array(
            [s.model.standby_power for s in self.servers]
        )
        self.slope = np.array([s.model.slope for s in self.servers])
        self.t_ambient = np.array(
            [s.thermal_params.t_ambient for s in self.servers]
        )
        self.t_limit = np.array(
            [s.thermal_params.t_limit for s in self.servers]
        )
        self.c1 = np.array([s.thermal_params.c1 for s in self.servers])
        self.c2 = np.array([s.thermal_params.c2 for s in self.servers])
        self.thermal_window = np.array(
            [s.thermal_window for s in self.servers]
        )
        # exp(-c2 * dt) for the tick-length integration step and for the
        # Eq. 3 adjustment window; both are fixed for the whole run.
        self.decay_tick = np.exp(-self.c2 * config.delta_d)
        self.decay_window = np.exp(-self.c2 * self.thermal_window)
        self.circuit_limit = float(config.circuit_limit)
        if config.thermal_enabled and config.thermal_mode == "window_reset":
            # Constant zone caps: Eq. 3 evaluated at each zone's ambient.
            zone_cap = power_cap_arrays(
                self.t_ambient,
                t_ambient=self.t_ambient,
                t_limit=self.t_limit,
                c1=self.c1,
                c2=self.c2,
                decay=self.decay_window,
            )
            self.window_caps = np.minimum(self.circuit_limit, zone_cap)
        else:
            self.window_caps = None

        # -- per-tick mutable state (gathered from the objects) -----------
        self.awake = np.zeros(n, dtype=bool)
        self.asleep = np.zeros(n, dtype=bool)
        self.waking = np.zeros(n, dtype=bool)
        self.mig_cost = np.zeros(n)
        self.budget = np.zeros(n)
        self.temperature = np.zeros(n)
        self.raw = np.zeros(n)
        self.served = np.zeros(n)
        self.smoother = VectorSmoother(config.alpha, n)

    # -------------------------------------------------------------- gather
    def gather(self) -> None:
        """Refresh every mutable array from the runtime objects."""
        self.gather_sleep()
        self.gather_costs()
        smoother = self.smoother
        values = smoother.values
        primed = smoother.primed
        budget = self.budget
        temperature = self.temperature
        for i, s in enumerate(self.servers):
            # ExponentialSmoother keeps None until primed; mirror that
            # into the (value, primed) lane pair.
            v = s.smoother._value
            if v is None:
                values[i] = 0.0
                primed[i] = False
            else:
                values[i] = v
                primed[i] = True
            budget[i] = s.budget
            temperature[i] = s.thermal.temperature

    def gather_sleep(self) -> None:
        """Refresh only the sleep-state masks (cheap mid-tick resync)."""
        awake = self.awake
        waking = self.waking
        for i, s in enumerate(self.servers):
            state = s.sleep_state
            awake[i] = state is SleepState.AWAKE
            waking[i] = state is SleepState.WAKING
        np.logical_not(awake | waking, out=self.asleep)

    def gather_costs(self) -> None:
        """Refresh pending migration-cost demand (changes on migrations)."""
        mig_cost = self.mig_cost
        for i, s in enumerate(self.servers):
            mig_cost[i] = (
                s.migration_cost_demand if s._pending_costs else 0.0
            )

    # ---------------------------------------------------------------- caps
    def hard_caps(self) -> np.ndarray:
        """Per-server ``min(thermal cap, circuit rating)`` like
        :meth:`ServerRuntime.hard_cap`, over the whole fleet."""
        if not self.config.thermal_enabled:
            return np.full(self.n, self.circuit_limit)
        if self.window_caps is not None:
            return self.window_caps
        thermal_cap = power_cap_arrays(
            self.temperature,
            t_ambient=self.t_ambient,
            t_limit=self.t_limit,
            c1=self.c1,
            c2=self.c2,
            decay=self.decay_window,
        )
        return np.minimum(self.circuit_limit, thermal_cap)


#: FleetState array fields concatenated into the federation block.  The
#: immutable parameter arrays ride along so federation-wide sweeps (raw
#: demand, Eq. 3/4, serving) touch exactly one contiguous buffer each.
_BLOCK_FIELDS = (
    "static_power",
    "standby_power",
    "slope",
    "t_ambient",
    "t_limit",
    "c1",
    "c2",
    "thermal_window",
    "decay_tick",
    "decay_window",
    "awake",
    "asleep",
    "waking",
    "mig_cost",
    "budget",
    "temperature",
    "raw",
    "served",
)


class FederationFleet:
    """One struct-of-arrays block spanning every site of a federation.

    Concatenates the member :class:`FleetState` arrays into shared
    buffers and *rebinds* each site's arrays (and its
    :class:`~repro.power.smoothing.VectorSmoother` lanes) to basic
    slices of the block.  Basic slicing shares memory, so per-site code
    (gathers, the per-site vectorized tick, consolidation resync) keeps
    working unchanged while federation-wide sweeps -- demand, Eq. 4
    smoothing, Eq. 2/3 thermal, serving, and the rebalance snapshot's
    segment reductions -- run once over the whole block.

    Sites may differ in ``alpha`` (per-lane array, bit-identical to the
    per-site scalar broadcast) and in thermal mode (``window_caps``
    falls back to per-site assembly when mixed).
    """

    def __init__(self, fleets: List[FleetState]):
        if not fleets:
            raise ValueError("FederationFleet needs at least one site fleet")
        self.fleets = list(fleets)
        sizes = np.array([f.n for f in self.fleets], dtype=np.intp)
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        self.n = int(bounds[-1])
        self.site_slices = [
            slice(int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(self.fleets))
        ]
        self.site_offsets = bounds[:-1]

        for name in _BLOCK_FIELDS:
            block = np.concatenate(
                [getattr(f, name) for f in self.fleets]
            )
            setattr(self, name, block)
            for f, sl in zip(self.fleets, self.site_slices):
                setattr(f, name, block[sl])

        # Shared smoother lanes: per-lane alpha so sites with different
        # Eq. 4 weights still advance in one elementwise update.
        self.smoother_values = np.concatenate(
            [f.smoother.values for f in self.fleets]
        )
        self.smoother_primed = np.concatenate(
            [f.smoother.primed for f in self.fleets]
        )
        self.alpha = np.concatenate(
            [np.full(f.n, f.smoother.alpha) for f in self.fleets]
        )
        for f, sl in zip(self.fleets, self.site_slices):
            f.smoother.values = self.smoother_values[sl]
            f.smoother.primed = self.smoother_primed[sl]

        caps = [f.window_caps for f in self.fleets]
        if all(c is not None for c in caps):
            self.window_caps = np.concatenate(caps)
            for f, sl in zip(self.fleets, self.site_slices):
                f.window_caps = self.window_caps[sl]
        else:
            self.window_caps = None

    # -------------------------------------------------------------- gather
    def gather_sleep(self) -> None:
        for fleet in self.fleets:
            fleet.gather_sleep()

    def gather_costs(self) -> None:
        for fleet in self.fleets:
            fleet.gather_costs()

    # ---------------------------------------------------------------- caps
    def hard_caps(self) -> np.ndarray:
        """Federation-wide :meth:`FleetState.hard_caps`.

        One block read when every site runs window-reset thermal caps;
        otherwise assembled from the per-site views (still array ops
        per site, just not a single fused one).
        """
        if self.window_caps is not None and all(
            f.config.thermal_enabled for f in self.fleets
        ):
            return self.window_caps
        return np.concatenate([f.hard_caps() for f in self.fleets])

    # ------------------------------------------------------------ reduction
    def site_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-site left-to-right fold of a block-shaped array (the
        rebalance snapshot's segment reduction)."""
        return np.array(
            [
                float(sum(values[sl].tolist()))
                for sl in self.site_slices
            ]
        )
