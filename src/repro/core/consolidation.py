"""Consolidation: drain under-utilised servers and put them to sleep.

"When the utilization in a node is really small the demand from that
node is migrated away from it and the node is deactivated" (Sec. IV-E);
the testbed sets the threshold at 20 % utilization (Sec. V-C5).  Every
``Delta_A = eta2 * Delta_D`` the planner:

1. finds awake servers below the utilization threshold,
2. for each (least-loaded first) checks whether *all* of its VMs fit
   into the remaining eligible surpluses (FFDLR, which by design packs
   into the smallest bins and so fills servers up), and
3. if so, plans the moves and marks the server for sleep -- partial
   drains are never done since a half-empty server saves nothing.

Waking is the inverse: when drops persist while a sleeping server
exists and the root has budget headroom for its static floor, one
server per consolidation round begins its (slow) S3/S4 resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.binpack.ffdlr import ffdlr_pack
from repro.binpack.items import Bin, Item
from repro.core.config import WillowConfig
from repro.core.migration import PlannedMove
from repro.core.state import NodeRuntime, ServerRuntime, SleepState
from repro.topology.tree import Tree
from repro.workload.vm import VM

__all__ = ["ConsolidationPlan", "ConsolidationPlanner"]

_EPS = 1e-9


@dataclass
class ConsolidationPlan:
    """Moves plus the servers to deactivate afterwards."""

    moves: List[PlannedMove] = field(default_factory=list)
    to_sleep: List[ServerRuntime] = field(default_factory=list)
    to_wake: List[ServerRuntime] = field(default_factory=list)


class ConsolidationPlanner:
    """Plans consolidation-driven migrations and sleep/wake actions."""

    def __init__(self, tree: Tree, config: WillowConfig):
        self.tree = tree
        self.config = config

    def _target_capacity(self, server: ServerRuntime) -> float:
        surplus = server.budget - server.raw_demand
        overhead = self.config.p_min + self.config.migration_cost_power
        return max(surplus - overhead, 0.0)

    def plan(
        self,
        servers: Dict[int, ServerRuntime],
        internals: Dict[int, NodeRuntime],
        *,
        recent_dropped_power: float = 0.0,
        root_budget: float = 0.0,
        total_demand: float = 0.0,
    ) -> ConsolidationPlan:
        """One consolidation pass.

        ``recent_dropped_power``, ``root_budget`` and ``total_demand``
        feed the wake heuristic: persistent drops with budget headroom
        justify resuming one sleeping server.
        """
        plan = ConsolidationPlan()
        config = self.config

        # Never drain capacity while demand is being dropped: in a
        # deficit regime consolidation would remove the very surplus
        # the deficits need (and fight the wake heuristic below).
        deficit_regime = recent_dropped_power > config.p_min

        # Servers whose budget fell below their own static floor cannot
        # comply while awake (the floor is unavoidable); they are drain
        # candidates even in a deficit regime -- the paper's severe-case
        # "shut down" response.
        floor = config.server_model.static_power
        if config.consolidation_enabled and deficit_regime:
            starved = sorted(
                (
                    s
                    for s in servers.values()
                    if s.is_awake and s.budget < floor - _EPS
                ),
                key=lambda s: s.vm_demand,
            )
            capacity: Dict[int, float] = {
                s.node.node_id: self._target_capacity(s)
                for s in servers.values()
                if s.is_awake and s.budget >= floor
            }
            for candidate in starved:
                if not candidate.vms:
                    plan.to_sleep.append(candidate)
                    continue
                items = [
                    Item(key=vm.vm_id, size=max(vm.current_demand, _EPS), payload=vm)
                    for vm in candidate.vms.values()
                ]
                bins = [
                    Bin(key=node_id, capacity=residual)
                    for node_id, residual in sorted(capacity.items())
                    if residual > _EPS
                ]
                if not bins:
                    continue
                result = ffdlr_pack(items, bins)
                if result.unpacked:
                    continue  # cannot strand VMs; stay awake
                for bin_ in result.bins:
                    for item in bin_.contents:
                        plan.moves.append(
                            PlannedMove(
                                vm=item.payload,
                                src=candidate.node,
                                dst=servers[bin_.key].node,
                            )
                        )
                        capacity[bin_.key] = max(
                            capacity[bin_.key] - item.size, 0.0
                        )
                plan.to_sleep.append(candidate)

        if config.consolidation_enabled and not deficit_regime:
            threshold_power = config.consolidation_threshold * config.server_model.slope
            # Hot-zone servers (higher ambient => lower thermal cap) are
            # drained first: Willow "tries to move as much work away
            # from these servers as possible due to their high
            # temperatures" (Sec. V-B3), which is also what maximises
            # their sleep time in Fig. 7.  Within a zone, drain the
            # least-loaded first.
            candidates = sorted(
                (
                    s
                    for s in servers.values()
                    if s.is_awake
                    and s.vm_demand <= threshold_power + _EPS
                ),
                key=lambda s: (-s.thermal_params.t_ambient, s.vm_demand),
            )
            draining: set = set()
            # Residual receive-capacity per potential target; mutated as
            # earlier drains land so later candidates see the truth.
            capacity: Dict[int, float] = {
                s.node.node_id: self._target_capacity(s)
                for s in servers.values()
                if s.is_awake
            }
            extra_load: Dict[int, float] = {}
            for candidate in candidates:
                # A server that received load from an earlier drain this
                # round stays up (its planned VMs are not in .vms yet,
                # so it could not be drained consistently anyway).
                if extra_load.get(candidate.node.node_id, 0.0) > _EPS:
                    continue
                current_demand = candidate.vm_demand
                if not candidate.vms and current_demand <= _EPS:
                    # Nothing hosted: deactivate immediately.
                    plan.to_sleep.append(candidate)
                    draining.add(candidate.node.node_id)
                    continue
                items = [
                    Item(key=vm.vm_id, size=max(vm.current_demand, _EPS), payload=vm)
                    for vm in candidate.vms.values()
                ]
                bins = [
                    Bin(key=node_id, capacity=residual)
                    for node_id, residual in sorted(capacity.items())
                    if node_id != candidate.node.node_id
                    and node_id not in draining
                    and residual > _EPS
                ]
                if not bins:
                    continue
                result = ffdlr_pack(items, bins)
                if result.unpacked:
                    continue  # partial drains save nothing; skip
                for bin_ in result.bins:
                    for item in bin_.contents:
                        vm: VM = item.payload
                        plan.moves.append(
                            PlannedMove(
                                vm=vm,
                                src=candidate.node,
                                dst=servers[bin_.key].node,
                            )
                        )
                        capacity[bin_.key] = max(
                            capacity[bin_.key] - item.size, 0.0
                        )
                        extra_load[bin_.key] = (
                            extra_load.get(bin_.key, 0.0) + item.size
                        )
                plan.to_sleep.append(candidate)
                draining.add(candidate.node.node_id)
                capacity.pop(candidate.node.node_id, None)

        # -- wake heuristic ---------------------------------------------------
        if deficit_regime:
            sleeping = [
                s for s in servers.values() if s.sleep_state is SleepState.ASLEEP
            ]
            headroom = root_budget - total_demand
            if sleeping and headroom > config.server_model.static_power:
                plan.to_wake.append(sleeping[0])
        return plan
