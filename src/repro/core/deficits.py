"""Power deficit, surplus and imbalance (paper Eqs. 5-9).

    P_def(l, i) = [CP_{l,i} - TP_{l,i}]+                    (Eq. 5)
    P_sur(l, i) = [TP_{l,i} - CP_{l,i}]+                    (Eq. 6)
    P_def(l)    = max_i P_def(l, i)                         (Eq. 7)
    P_sur(l)    = max_i P_sur(l, i)                         (Eq. 8)
    P_imb(l)    = P_def(l) + min[P_def(l), P_sur(l)]        (Eq. 9)

"The reason for capping the surplus by deficit is simply because any
supply that is in excess of deficit is not handled by our control
scheme and is left to be taken care of by the idle power control
schemes that operate at a finer granularity."
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "power_deficit",
    "power_surplus",
    "level_deficit",
    "level_surplus",
    "power_imbalance",
    "deficits_and_surpluses",
]


def power_deficit(demand: float, budget: float) -> float:
    """Per-node deficit ``[CP - TP]+`` (Eq. 5)."""
    return max(float(demand) - float(budget), 0.0)


def power_surplus(demand: float, budget: float) -> float:
    """Per-node surplus ``[TP - CP]+`` (Eq. 6)."""
    return max(float(budget) - float(demand), 0.0)


def deficits_and_surpluses(
    demands: Sequence[float], budgets: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised Eqs. 5-6 over a whole level."""
    demands = np.asarray(demands, dtype=float)
    budgets = np.asarray(budgets, dtype=float)
    if demands.shape != budgets.shape:
        raise ValueError("demands and budgets must have the same shape")
    diff = demands - budgets
    return np.maximum(diff, 0.0), np.maximum(-diff, 0.0)


def level_deficit(demands: Sequence[float], budgets: Sequence[float]) -> float:
    """Level-wide deficit ``max_i P_def(l, i)`` (Eq. 7)."""
    deficits, _ = deficits_and_surpluses(demands, budgets)
    return float(deficits.max()) if deficits.size else 0.0


def level_surplus(demands: Sequence[float], budgets: Sequence[float]) -> float:
    """Level-wide surplus ``max_i P_sur(l, i)`` (Eq. 8)."""
    _, surpluses = deficits_and_surpluses(demands, budgets)
    return float(surpluses.max()) if surpluses.size else 0.0


def power_imbalance(demands: Sequence[float], budgets: Sequence[float]) -> float:
    """Allocation inefficiency ``P_def(l) + min(P_def(l), P_sur(l))`` (Eq. 9)."""
    deficit = level_deficit(demands, budgets)
    surplus = level_surplus(demands, budgets)
    return deficit + min(deficit, surplus)
