"""Configuration for the Willow controller.

Defaults follow the paper's simulation setup (Sec. V-B): time-constant
multipliers ``eta1 = 4`` and ``eta2 = 7``, consolidation threshold 20 %
(Sec. V-C5), thermal constants ``c1 = 0.08, c2 = 0.05`` with
``Ta = 25 C`` and ``T_limit = 70 C``, and ~450 W maximum device power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.server import SIMULATION_SERVER, ServerPowerModel
from repro.power.switch import SIMULATION_SWITCH, SwitchPowerModel
from repro.thermal.model import ThermalParams

__all__ = ["WillowConfig"]


@dataclass(frozen=True)
class WillowConfig:
    """All Willow tunables.

    Time attributes
    ---------------
    delta_d:
        Demand-side adaptation granularity in seconds -- the basic tick
        (Sec. IV-C suggests >= 500 ms is safe; the simulation uses 1 s
        ticks so a tick doubles as the paper's "time unit").
    eta1, eta2:
        Supply-side and consolidation multipliers: ``delta_s = eta1 *
        delta_d`` and ``delta_a = eta2 * delta_d`` with ``eta2 > eta1 > 1``.
    alpha:
        Exponential-smoothing weight for demand trends (Eq. 4).

    Migration attributes
    --------------------
    p_min:
        Power margin (W) that must remain at both the source and the
        target after a migration (Sec. IV-E "Power Margin").
    migration_cost_power:
        Temporary power demand (W) charged to source and target nodes
        for each migration ("this cost is added as a temporary power
        demand to the nodes involved").
    migration_cost_ticks:
        How many ticks the temporary cost persists.
    migration_traffic_factor:
        Units of switch traffic per watt of migrated demand (VM state
        transferred scales with the VM's size).

    Consolidation attributes
    ------------------------
    consolidation_threshold:
        Utilization fraction below which a server becomes a drain
        candidate (the paper sets 20 %).
    wake_latency_ticks:
        Ticks a sleeping server needs to come back up (S3/S4 resume).
    consolidation_enabled:
        Master switch (the Fig. 7 baseline disables it).

    Model attributes
    ----------------
    server_model / switch_model / thermal:
        Power and thermal models applied to every server/switch.  The
        controller accepts per-node ambient overrides for hot/cold
        zones.
    circuit_limit:
        Hard per-server power-circuit rating (W).
    thermal_enabled:
        When False the thermal hard constraint is ignored (the
        ``no_thermal`` baseline), leaving only the circuit limit.
    thermal_mode:
        ``"window_reset"`` (default) applies the paper's conservative
        assumption that temperature settles within one demand window
        (Sec. V-B2): each tick the temperature is re-derived from the
        zone ambient and the tick's power, and the thermal cap is the
        constant zone cap from Eq. 3 evaluated at ambient.  This is the
        only reading under which the paper's own constants (c1=0.08,
        c2=0.05) sustain hundreds of watts; see DESIGN.md.
        ``"integrated"`` integrates the RC model across ticks (true
        dynamics; used for the testbed time-series experiments).
    thermal_window:
        Window length (in seconds) for the Eq. 3 cap.  ``None`` selects
        the paper's implicit calibration: the window making a cool idle
        node's cap equal the maximum device power (circuit_limit).
    """

    # -- time granularity (Sec. IV-C) --
    delta_d: float = 1.0
    eta1: int = 4
    eta2: int = 7
    alpha: float = 0.5

    # -- migration control (Sec. IV-E) --
    p_min: float = 10.0
    migration_cost_power: float = 5.0
    migration_cost_ticks: int = 1
    migration_traffic_factor: float = 1.0
    local_first: bool = True
    #: When True and an IPC graph is supplied to the controller, the
    #: demand-side matcher first tries to place each shed VM on a
    #: server already hosting one of its IPC peers (highest-rate peer
    #: first), falling back to FFDLR for the rest.  Keeps chatty
    #: clusters together across migrations (Sec. VI future work).
    affinity_aware: bool = False

    # -- consolidation (Sec. IV-E / V-C5) --
    consolidation_threshold: float = 0.20
    wake_latency_ticks: int = 2
    consolidation_enabled: bool = True

    # -- models --
    server_model: ServerPowerModel = field(default_factory=lambda: SIMULATION_SERVER)
    switch_model: SwitchPowerModel = field(default_factory=lambda: SIMULATION_SWITCH)
    thermal: ThermalParams = field(default_factory=ThermalParams)
    circuit_limit: float = 450.0
    thermal_enabled: bool = True
    thermal_mode: str = "window_reset"
    thermal_window: float | None = None

    #: How a parent's budget is divided among children.  ``"demand"``
    #: follows Sec. IV-A ("in proportion to their demands"); the
    #: experimental testbed (Sec. V-C4, "the available power supply is
    #: divided proportionally between the servers") divides in
    #: proportion to capacity, which for identical servers is an equal
    #: split -- the only reading under which a global supply plunge
    #: leaves low-utilization servers with the surplus that Fig. 16's
    #: migrations flow into.  See DESIGN.md.
    allocation_mode: str = "demand"

    #: Optional per-component thermal modelling (repro.devices).  When
    #: set (e.g. to ``repro.devices.STANDARD_DEVICES``) every server's
    #: hard cap becomes the tightest component envelope and per-device
    #: temperatures are tracked.  ``None`` keeps the paper's
    #: server-level model.
    device_classes: tuple | None = None

    def __post_init__(self) -> None:
        if self.allocation_mode not in ("demand", "capacity"):
            raise ValueError(
                f"allocation_mode must be 'demand' or 'capacity', "
                f"got {self.allocation_mode!r}"
            )
        if self.thermal_mode not in ("window_reset", "integrated"):
            raise ValueError(
                f"thermal_mode must be 'window_reset' or 'integrated', "
                f"got {self.thermal_mode!r}"
            )
        if self.thermal_window is not None and self.thermal_window <= 0:
            raise ValueError("thermal_window must be positive")
        if self.delta_d <= 0:
            raise ValueError(f"delta_d must be positive, got {self.delta_d}")
        if not (self.eta2 > self.eta1 > 1):
            raise ValueError(
                f"need eta2 > eta1 > 1, got eta1={self.eta1}, eta2={self.eta2}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.p_min < 0:
            raise ValueError(f"p_min must be >= 0, got {self.p_min}")
        if self.migration_cost_power < 0:
            raise ValueError("migration_cost_power must be >= 0")
        if self.migration_cost_ticks < 0:
            raise ValueError("migration_cost_ticks must be >= 0")
        if self.migration_traffic_factor < 0:
            raise ValueError("migration_traffic_factor must be >= 0")
        if not 0.0 <= self.consolidation_threshold < 1.0:
            raise ValueError(
                "consolidation_threshold must be in [0, 1), got "
                f"{self.consolidation_threshold}"
            )
        if self.wake_latency_ticks < 0:
            raise ValueError("wake_latency_ticks must be >= 0")
        if self.circuit_limit <= 0:
            raise ValueError("circuit_limit must be positive")

    # -- derived intervals --
    @property
    def delta_s(self) -> float:
        """Supply-side adaptation period (seconds)."""
        return self.eta1 * self.delta_d

    @property
    def delta_a(self) -> float:
        """Consolidation decision period (seconds)."""
        return self.eta2 * self.delta_d

    def resolved_thermal_window(self) -> float:
        """The Eq. 3 cap window, defaulting to the paper's calibration.

        With the paper's constants this is ~1.29 time units: the window
        over which a cool idle node presents exactly ``circuit_limit``
        watts of thermal surplus (Fig. 4's selection criterion).
        """
        if self.thermal_window is not None:
            return self.thermal_window
        from repro.thermal.model import window_for_power_cap

        return window_for_power_cap(self.thermal, self.circuit_limit)
