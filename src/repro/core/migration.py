"""Demand-side migration planning (paper Sec. IV-E).

The planner turns per-server deficits into a set of VM moves:

1. **Shedding.**  Each deficient server sheds whole VMs (demand is never
   split below application granularity), largest first, until its
   remaining demand leaves at least ``P_min`` surplus under its budget.
2. **Matching, local first.**  Shed VMs become bin-packing items; the
   surpluses of eligible servers (margin ``P_min`` and the pending
   migration cost already subtracted) become bins.  Matching proceeds
   bottom-up: first within the source's parent group (local), then
   within progressively higher subtrees (non-local), using FFDLR at
   every stage.
3. **Unidirectional rule.**  A server is an eligible target only if
   neither it nor any ancestor is *squeezed* -- had its budget reduced
   by the latest supply event while its smoothed demand exceeds the new
   budget.  (The paper forbids migrating into any node whose budget the
   triggering event reduced; under a global supply dip that literal
   reading would forbid the rebalancing its own testbed performs, so we
   scope the rule to nodes the reduction actually left short.  See
   DESIGN.md.)
4. **Drops.**  Items no surplus can hold are returned as drops: the
   demand is shed entirely this tick (the hosted application runs
   degraded), exactly as Sec. IV-E prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.binpack.ffdlr import ffdlr_pack
from repro.binpack.items import Bin, Item
from repro.core.config import WillowConfig
from repro.core.state import NodeRuntime, ServerRuntime
from repro.topology.tree import Node, Tree
from repro.workload.vm import VM

__all__ = ["PlannedMove", "MigrationPlan", "MigrationPlanner"]

_EPS = 1e-9


@dataclass(frozen=True)
class PlannedMove:
    """One VM move the planner decided on."""

    vm: VM
    src: Node
    dst: Node

    @property
    def local(self) -> bool:
        return self.src.parent is self.dst.parent


@dataclass
class MigrationPlan:
    """Outcome of one planning pass."""

    moves: List[PlannedMove] = field(default_factory=list)
    dropped: List[Tuple[VM, Node]] = field(default_factory=list)

    @property
    def dropped_power(self) -> float:
        return sum(vm.current_demand for vm, _node in self.dropped)


class MigrationPlanner:
    """Plans demand-driven migrations over one hierarchy.

    ``ipc_graph`` (a :class:`repro.workload.affinity.AffinityGraph`)
    enables the affinity pre-pass when ``config.affinity_aware`` is
    set: shed VMs are offered first to servers hosting their heaviest
    IPC peers.
    """

    def __init__(self, tree: Tree, config: WillowConfig, ipc_graph=None):
        self.tree = tree
        self.config = config
        self.ipc_graph = ipc_graph
        # The topology is immutable for the planner's lifetime, so the
        # per-group leaf sets and per-leaf ancestor chains consulted on
        # every planning pass are computed once here.
        self._group_leaf_ids: Dict[int, frozenset] = {}
        for level in range(1, tree.root.level + 1):
            for group in tree.nodes_at_level(level):
                self._group_leaf_ids[group.node_id] = frozenset(
                    leaf.node_id for leaf in tree.subtree_leaves(group)
                )
        self._ancestor_ids: Dict[int, Tuple[int, ...]] = {
            leaf.node_id: tuple(a.node_id for a in leaf.ancestors())
            for leaf in tree.servers()
        }
        # Sorted leaf ids per group, so per-group bin construction walks
        # the subtree instead of filtering the whole fleet.
        self._group_sorted_leaves: Dict[int, Tuple[int, ...]] = {
            group_id: tuple(sorted(leaf_ids))
            for group_id, leaf_ids in self._group_leaf_ids.items()
        }

    # -- eligibility ---------------------------------------------------------
    def _squeezed(
        self,
        server: ServerRuntime,
        internals: Dict[int, NodeRuntime],
    ) -> bool:
        """Unidirectional-rule check: is this target in a sinking subtree?"""
        if server.budget_reduced and server.smoothed_demand > server.budget + _EPS:
            return True
        ancestor_ids = self._ancestor_ids.get(
            server.node.node_id,
            tuple(a.node_id for a in server.node.ancestors()),
        )
        for ancestor_id in ancestor_ids:
            runtime = internals.get(ancestor_id)
            if runtime is None:
                continue
            if (
                runtime.budget_reduced
                and runtime.smoothed_demand > runtime.budget + _EPS
            ):
                return True
        return False

    def _target_capacity(self, server: ServerRuntime) -> float:
        """Bin capacity a server offers: surplus minus margin and cost."""
        surplus = server.budget - server.raw_demand
        overhead = self.config.p_min + self.config.migration_cost_power
        return max(surplus - overhead, 0.0)

    # -- shedding --------------------------------------------------------------
    def _shed_items(self, server: ServerRuntime) -> List[Item]:
        """Choose whole VMs to move off a deficient server.

        Sheds largest-demand VMs first until the remaining demand fits
        under ``budget - P_min`` (or no VMs remain).
        """
        goal = max(server.budget - self.config.p_min, 0.0)
        remaining = server.raw_demand
        items: List[Item] = []
        for vm in sorted(
            server.vms.values(), key=lambda v: v.current_demand, reverse=True
        ):
            if remaining <= goal + _EPS:
                break
            if vm.current_demand <= 0:
                continue
            items.append(Item(key=vm.vm_id, size=vm.current_demand, payload=vm))
            remaining -= vm.current_demand
        return items

    # -- planning ---------------------------------------------------------------
    def plan(
        self,
        servers: Dict[int, ServerRuntime],
        internals: Dict[int, NodeRuntime],
    ) -> MigrationPlan:
        """One demand-side planning pass over the whole tree.

        ``servers`` maps leaf node ids to runtimes; ``internals`` maps
        internal node ids to runtimes (for the unidirectional rule).
        """
        deficient = [
            s
            for s in servers.values()
            if s.is_awake and s.raw_demand > s.budget + _EPS
        ]
        if not deficient:
            return MigrationPlan()

        # Residual capacity each eligible target still offers (mutates
        # as matching proceeds so later passes see earlier placements).
        capacity: Dict[int, float] = {}
        for server in servers.values():
            if not server.is_awake:
                continue
            if server.raw_demand > server.budget + _EPS:
                continue  # deficient servers never receive
            if self._squeezed(server, internals):
                continue
            cap = self._target_capacity(server)
            if cap > _EPS:
                capacity[server.node.node_id] = cap
        return self.plan_prescreened(servers, deficient, capacity)

    def plan_prescreened(
        self,
        servers: Dict[int, ServerRuntime],
        deficient: List[ServerRuntime],
        capacity: Dict[int, float],
    ) -> MigrationPlan:
        """Matching stage of :meth:`plan`, with the per-server screening
        already done.

        ``deficient`` must hold the over-budget awake servers in fleet
        order and ``capacity`` the eligible targets' spare watts (also
        in fleet order), exactly as :meth:`plan` computes them; the
        vectorized controller produces both from its arrays.
        """
        plan = MigrationPlan()
        if not deficient:
            return plan

        # Pending items grouped by source server id.
        pending: Dict[int, List[Item]] = {}
        sources: Dict[int, ServerRuntime] = {}
        for server in deficient:
            items = self._shed_items(server)
            if items:
                pending[server.node.node_id] = items
                sources[server.node.node_id] = server

        # Affinity pre-pass: offer each shed VM to the eligible server
        # hosting its heaviest IPC peer before generic matching.
        if self.config.affinity_aware and self.ipc_graph is not None:
            vm_host = {
                vm.vm_id: server.node.node_id
                for server in servers.values()
                for vm in server.vms.values()
            }
            for src_id in list(pending):
                remaining_items = []
                for item in pending[src_id]:
                    placed = False
                    peers = sorted(
                        self.ipc_graph.neighbours(item.key),
                        key=lambda pair: -pair[1],
                    )
                    for peer_id, _rate in peers:
                        host = vm_host.get(peer_id)
                        if (
                            host is None
                            or host == src_id
                            or host not in capacity
                            or capacity[host] < item.size - _EPS
                        ):
                            continue
                        plan.moves.append(
                            PlannedMove(
                                vm=item.payload,
                                src=servers[src_id].node,
                                dst=servers[host].node,
                            )
                        )
                        capacity[host] = max(capacity[host] - item.size, 0.0)
                        vm_host[item.key] = host
                        placed = True
                        break
                    if not placed:
                        remaining_items.append(item)
                if remaining_items:
                    pending[src_id] = remaining_items
                else:
                    del pending[src_id]

        # Bottom-up matching: local (parent group) first, then wider.
        levels = range(1, self.tree.root.level + 1) if self.config.local_first else [
            self.tree.root.level
        ]
        for level in levels:
            if not pending:
                break
            for group in self.tree.nodes_at_level(level):
                group_leaf_ids = self._group_leaf_ids[group.node_id]
                group_items: List[Tuple[int, Item]] = [
                    (src_id, item)
                    for src_id, items in pending.items()
                    if src_id in group_leaf_ids
                    for item in items
                ]
                if not group_items:
                    continue
                if len(group_items) == 1:
                    # Fast path: FFDLR with one item reduces to "the
                    # smallest eligible bin that holds it" (phase 2
                    # scans bins by ascending capacity; the best-fit
                    # fallback applies the same fit test to the same
                    # empty bins).  Selecting directly skips building
                    # a Bin object per eligible target.
                    src_id, item = group_items[0]
                    best_id = None
                    best_cap = 0.0
                    for node_id in self._group_sorted_leaves[
                        group.node_id
                    ]:
                        cap = capacity.get(node_id)
                        if cap is None or node_id in pending:
                            continue
                        if item.size <= cap + _EPS and (
                            best_id is None or cap < best_cap
                        ):
                            best_id, best_cap = node_id, cap
                    if best_id is not None:
                        plan.moves.append(
                            PlannedMove(
                                vm=item.payload,
                                src=servers[src_id].node,
                                dst=servers[best_id].node,
                            )
                        )
                        capacity[best_id] = max(
                            capacity[best_id] - item.size, 0.0
                        )
                        del pending[src_id]
                    continue
                bins = [
                    Bin(key=node_id, capacity=capacity[node_id])
                    for node_id in self._group_sorted_leaves[group.node_id]
                    if node_id in capacity and node_id not in pending
                ]
                if not bins:
                    continue
                result = ffdlr_pack([item for _src, item in group_items], bins)
                src_of = {item.key: src_id for src_id, item in group_items}
                for bin_ in result.bins:
                    for item in bin_.contents:
                        src_id = src_of[item.key]
                        vm: VM = item.payload
                        plan.moves.append(
                            PlannedMove(
                                vm=vm,
                                src=servers[src_id].node,
                                dst=servers[bin_.key].node,
                            )
                        )
                        capacity[bin_.key] = max(
                            capacity[bin_.key] - item.size, 0.0
                        )
                        pending[src_id] = [
                            it for it in pending[src_id] if it.key != item.key
                        ]
                        if not pending[src_id]:
                            del pending[src_id]

        # Anything still pending found no surplus anywhere: drop it.
        for src_id, items in pending.items():
            for item in items:
                plan.dropped.append((item.payload, servers[src_id].node))
        return plan
