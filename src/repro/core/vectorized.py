"""Array-based Willow tick path (behavioural twin of the scalar loop).

:class:`VectorizedWillowController` re-implements the per-tick hot path
of :class:`~repro.core.controller.WillowController` over a
:class:`~repro.core.fleet.FleetState` struct-of-arrays view: batched
Poisson demand sampling, fleet-wide Eq. 4 smoothing, grouped Eq. 3
thermal steps and a level-at-a-time proportional budget waterfill.

Everything stateful stays on the runtime objects -- planners,
consolidation, migration cost bookkeeping, metric hooks and the
collector see exactly the scalar controller's interfaces.  Numerical
results match the scalar path bit-for-bit until the first migration
re-orders a per-host demand sum, and to ``rtol=1e-12`` after that (see
docs/performance.md for the precise contract and
tests/test_vectorized_equivalence.py for the enforcement).

Not supported: ``config.device_classes`` (the per-device thermal state
is inherently object-shaped; use the scalar controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.controller import WillowController, _EPS
from repro.core.deficits import power_imbalance
from repro.core.events import ControlMessage, Drop, MigrationCause
from repro.core.fleet import FleetState, build_fold_index, fold_segment_sums
from repro.core.migration import PlannedMove
from repro.core.state import SleepState
from repro.metrics.collector import ServerSample, SwitchSample
from repro.power.budget import LevelIndex, allocate_level
from repro.thermal.model import temperature_step_arrays
from repro.topology.tree import Node
from repro.workload.generator import DemandGenerator

__all__ = ["VectorizedWillowController"]

#: Margin below which the per-VM scalar serving loop is used instead of
#: the vectorized fast path, so borderline budget/demand ties resolve
#: exactly as in the scalar controller.
_SERVE_MARGIN = 1e-6


@dataclass
class _LevelSpec:
    """Precomputed structure of one internal tree level."""

    nodes: List[Node]
    node_ids: np.ndarray
    runtimes: list  # NodeRuntime per node
    child_nodes: List[Node]  # flat, (node, child) nesting order
    child_ids: np.ndarray
    child_id_list: List[int]  # child_ids as plain ints, for messages
    child_runtimes: list  # ServerRuntime | NodeRuntime, flat
    offsets: np.ndarray
    pad_idx: np.ndarray
    valid: np.ndarray
    alloc_index: LevelIndex  # precomputed group structure for budgets
    site_switches: list  # per node: switches colocated at that site


class VectorizedWillowController(WillowController):
    """Drop-in replacement for :class:`WillowController` with an
    array-based tick.  Same constructor, same metrics, same hooks."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self.config.device_classes is not None:
            raise ValueError(
                "VectorizedWillowController does not support device_classes; "
                "use the scalar WillowController for device-level thermal runs"
            )
        ordered = [self.servers[leaf.node_id] for leaf in self.tree.servers()]
        self.fleet = FleetState(ordered, self.config)
        # One full gather seeds the arrays; after this the tick loop
        # only re-reads what other actors mutate (sleep states and
        # migration costs) -- budgets, temperatures and smoother lanes
        # are written by this controller alone and scattered back to
        # the objects whenever they change.
        self.fleet.gather()
        self._server_ids = [s.node.node_id for s in self.fleet.servers]
        #: row in the VM demand vector for each vm_id (plan order)
        self._vm_row: Dict[int, int] = {
            vm.vm_id: i for i, vm in enumerate(self.placement.vms)
        }
        self._vm_host_rows = np.array(
            [self.fleet.index[vm.host_id] for vm in self.placement.vms],
            dtype=np.intp,
        )
        # Cross-site hosting support (geo-federation): home VMs that a
        # coordinator moved away contribute nothing here, while foreign
        # VMs hosted on this site's servers are added as a sparse
        # correction on top of the batched per-host sums.
        self._vm_away = np.zeros(len(self.placement.vms), dtype=bool)
        self._away_count = 0
        self._foreign_vms: Dict[int, object] = {}
        self._foreign_rows: Dict[int, int] = {}
        self._n_nodes = max(node.node_id for node in self.tree) + 1
        self._caps_buffer = np.zeros(self._n_nodes)
        self._budget_buffer = np.zeros(self._n_nodes)
        self._served_buffer = np.zeros(self._n_nodes)
        self._demand_buffer = np.zeros(self._n_nodes)
        self._levels_up = self._build_level_specs()

        # Ancestor chains as an index matrix into a per-internal-node
        # flag vector, for the vectorized unidirectional-rule check.
        # Ragged chains pad with a sentinel slot that is always False.
        self._internal_list = list(self.internals.values())
        internal_index = {
            runtime.node.node_id: j
            for j, runtime in enumerate(self._internal_list)
        }
        chains = [
            [internal_index[a.node_id] for a in s.node.ancestors()]
            for s in self.fleet.servers
        ]
        depth = max((len(c) for c in chains), default=0)
        sentinel = len(self._internal_list)
        self._anc_matrix = np.full(
            (self.fleet.n, max(depth, 1)), sentinel, dtype=np.intp
        )
        for i, chain in enumerate(chains):
            self._anc_matrix[i, : len(chain)] = chain
        self._int_flags = np.zeros(sentinel + 1, dtype=bool)

        self._switch_list = list(self.fabric.switches)
        self._switch_site_ids = np.array(
            [sw.site.node_id for sw in self._switch_list], dtype=np.intp
        )
        self._switch_redundancy = np.array(
            [float(sw.redundancy) for sw in self._switch_list]
        )
        self._switch_pos = {
            sw.switch_id: i for i, sw in enumerate(self._switch_list)
        }

    # ---------------------------------------------------------- structure
    def _build_level_specs(self) -> List[_LevelSpec]:
        specs: List[_LevelSpec] = []
        for level in range(1, self.tree.root.level + 1):
            nodes = self.tree.nodes_at_level(level)
            child_nodes: List[Node] = []
            child_runtimes = []
            sizes = []
            for node in nodes:
                sizes.append(len(node.children))
                for child in node.children:
                    child_nodes.append(child)
                    if child.is_leaf:
                        child_runtimes.append(self.servers[child.node_id])
                    else:
                        child_runtimes.append(self.internals[child.node_id])
            sizes = np.asarray(sizes, dtype=np.intp)
            pad_idx, valid = build_fold_index(sizes)
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(
                np.intp
            )
            specs.append(
                _LevelSpec(
                    nodes=list(nodes),
                    node_ids=np.array(
                        [n.node_id for n in nodes], dtype=np.intp
                    ),
                    runtimes=[self.internals[n.node_id] for n in nodes],
                    child_nodes=child_nodes,
                    child_ids=np.array(
                        [c.node_id for c in child_nodes], dtype=np.intp
                    ),
                    child_id_list=[c.node_id for c in child_nodes],
                    child_runtimes=child_runtimes,
                    offsets=offsets,
                    pad_idx=pad_idx,
                    valid=valid,
                    alloc_index=LevelIndex(offsets, len(child_nodes)),
                    site_switches=[
                        list(self.fabric.at_site(n)) for n in nodes
                    ],
                )
            )
        return specs

    # ----------------------------------------------------------------- tick
    def _tick(self) -> None:
        now = self.env.now
        config = self.config
        fleet = self.fleet
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_tick(self._tick_index, now)
        self._tick_migration_traffic = {}

        # 0. housekeeping on the objects, then mirror into arrays.
        # The attribute guards skip the (empty) method calls for the
        # common case of an awake server with no pending costs.
        costs_dirty = False
        sleep_dirty = False
        for server in fleet.servers:
            if server._pending_costs:
                server.expire_costs()
                costs_dirty = True
            if server.sleep_state is not SleepState.AWAKE:
                server.tick_wake()
                sleep_dirty = True
        if sleep_dirty:
            fleet.gather_sleep()
        if costs_dirty:
            fleet.gather_costs()

        # 0b. plant-fault hook (no-op in the ideal plant).  Subclasses
        # that mutate sleep states here must call fleet.gather_sleep()
        # themselves.
        self._begin_tick(now)

        # 1+2. sample demand, aggregate per host, smooth (Eq. 4).
        vm_demands = self._sample_vm_demands()
        vm_sums = self._host_demand_sums(vm_demands)
        raw = np.where(
            fleet.asleep,
            fleet.standby_power,
            np.where(
                fleet.waking,
                fleet.static_power,
                fleet.static_power + vm_sums + fleet.mig_cost,
            ),
        )
        # Waking servers keep reporting their wake forecast; everyone
        # else (awake or asleep) absorbs this tick's observation.
        smoothed = fleet.smoother.update(raw, mask=~fleet.waking)
        fleet.raw[...] = raw
        raw_list = raw.tolist()
        smoothed_list = smoothed.tolist()
        for i, server in enumerate(fleet.servers):
            server.raw_demand = raw_list[i]
            server.smoothed_demand = smoothed_list[i]
            server.smoother._value = smoothed_list[i]
        self._aggregate_demands(now)

        # 3. supply-side adaptation every Delta_S (or sooner when a
        # fault-aware subclass forces one).
        if self._allocation_due():
            self._allocate_budgets(now)
            budget = fleet.budget
            for i, server in enumerate(fleet.servers):
                budget[i] = server.budget

        if tracer.enabled:
            standing = fleet.budget.tolist()
            for i, sid in enumerate(self._server_ids):
                tracer.record_demand(
                    sid, raw_list[i], smoothed_list[i], standing[i]
                )

        # 4. demand-side migrations, with the planner's per-server
        # screening (deficient set, unidirectional rule, target
        # capacities) computed on the arrays.
        moved = False
        plan = self._plan_demand_migrations(raw, smoothed)
        if plan is not None:
            self._execute_moves(plan.moves, MigrationCause.DEMAND, now)
            moved = bool(plan.moves)
            for vm, node in plan.dropped:
                self.collector.record_unmatched(
                    Drop(now, node.node_id, vm.vm_id, vm.current_demand)
                )

        # 5. consolidation every Delta_A.
        if self._tick_index > 0 and self._tick_index % config.eta2 == 0:
            n_migrations = len(self.collector.migrations)
            self._consolidate(now)
            moved = moved or len(self.collector.migrations) > n_migrations
            # Consolidation may flip sleep states and, on wake, reset a
            # server's smoother to the drop-absorbing forecast; re-read
            # everything the objects own before serving below.
            fleet.gather()
        if moved:
            # Migrations rehomed VMs and charged costs mid-tick; refresh
            # the per-host demand sums and cost array before serving.
            if vm_demands is None:
                vm_demands = np.fromiter(
                    (vm.current_demand for vm in self.placement.vms),
                    float,
                    len(self.placement.vms),
                )
            vm_sums = self._host_demand_sums(vm_demands)
            fleet.gather_costs()

        # 6. serve power within budget; throttle any residual excess.
        available = np.maximum(
            fleet.budget - fleet.static_power - fleet.mig_cost, 0.0
        )
        fast = fleet.awake & (available >= vm_sums + _SERVE_MARGIN)
        served = np.where(fast, vm_sums, 0.0)
        slow_rows = np.nonzero(fleet.awake & ~fast)[0]
        if len(slow_rows):
            available_list = available.tolist()
            for i in slow_rows.tolist():
                served[i] = self._serve_scalar(
                    fleet.servers[i], available_list[i], now
                )
        fleet.served[...] = served
        served_list = served.tolist()
        for i, server in enumerate(fleet.servers):
            server.served_power = served_list[i]

        # 7. thermal update and per-server samples.
        wall = np.where(
            fleet.asleep,
            fleet.standby_power,
            np.where(
                fleet.waking, fleet.static_power, fleet.static_power + served
            ),
        )
        if config.thermal_mode == "window_reset":
            # Each tick re-derives the temperature from the zone ambient
            # at this tick's power (paper Sec. V-B2).
            temps = temperature_step_arrays(
                fleet.t_ambient,
                wall,
                t_ambient=fleet.t_ambient,
                c1=fleet.c1,
                c2=fleet.c2,
                decay=fleet.decay_window,
            )
            violations = temps > fleet.t_limit + 1e-6
        else:
            temps = temperature_step_arrays(
                fleet.temperature,
                wall,
                t_ambient=fleet.t_ambient,
                c1=fleet.c1,
                c2=fleet.c2,
                decay=fleet.decay_tick,
            )
            violations = temps > fleet.t_limit + 1e-9
        fleet.temperature[...] = temps
        utilization = np.where(
            fleet.awake, np.minimum(served / fleet.slope, 1.0), 0.0
        )
        wall_list = wall.tolist()
        temp_list = temps.tolist()
        util_list = utilization.tolist()
        viol_list = violations.tolist()
        budget_list = fleet.budget.tolist()
        awake_list = fleet.awake.tolist()
        samples = self.collector.server_samples
        server_ids = self._server_ids
        for i, server in enumerate(fleet.servers):
            integrator = server.thermal
            t = temp_list[i]
            integrator.temperature = t
            if t > integrator.peak:
                integrator.peak = t
            if viol_list[i]:
                integrator.violations += 1
            samples.append(
                ServerSample(
                    now,
                    server_ids[i],
                    wall_list[i],
                    t,
                    util_list[i],
                    raw_list[i],
                    budget_list[i],
                    not awake_list[i],
                )
            )

        # 8. switch traffic and power.
        self._record_switches(now)

        # 9. level-0 imbalance (Eq. 9).
        self.collector.record_imbalance(
            now, power_imbalance(raw, fleet.budget)
        )

        for hook in self.on_tick:
            hook(self, self._tick_index, now)

        self._tick_index += 1

    # ---------------------------------------------------------- migrations
    def _plan_demand_migrations(self, raw, smoothed):
        """Array pre-screen + the planner's matching stage.

        Replicates :meth:`MigrationPlanner.plan`'s per-server loops
        (deficient detection, the unidirectional squeeze rule, target
        capacity computation) as array expressions, then hands the
        results to :meth:`MigrationPlanner.plan_prescreened`.  Returns
        ``None`` when no awake server is over budget (the planner would
        return an empty plan).
        """
        fleet = self.fleet
        deficient_mask = fleet.awake & (raw > fleet.budget + _EPS)
        if not bool(deficient_mask.any()):
            return None
        squeezed = self._squeezed_mask(smoothed)
        overhead = (
            self.config.p_min + self.config.migration_cost_power
        )
        cap = np.maximum((fleet.budget - raw) - overhead, 0.0)
        eligible = (
            fleet.awake & ~deficient_mask & ~squeezed & (cap > _EPS)
        )
        cap_list = cap.tolist()
        capacity = {
            fleet.servers[i].node.node_id: cap_list[i]
            for i in np.nonzero(eligible)[0].tolist()
        }
        deficient = [
            fleet.servers[i]
            for i in np.nonzero(deficient_mask)[0].tolist()
        ]
        return self.migration_planner.plan_prescreened(
            self.servers, deficient, capacity
        )

    def _squeezed_mask(self, smoothed: np.ndarray) -> np.ndarray:
        """Fleet-wide :meth:`MigrationPlanner._squeezed`: a server is
        squeezed when it (or any ancestor) had its budget reduced while
        its smoothed demand still exceeds that budget."""
        fleet = self.fleet
        flags = self._int_flags
        for j, runtime in enumerate(self._internal_list):
            flags[j] = (
                runtime.budget_reduced
                and runtime.smoothed_demand > runtime.budget + _EPS
            )
        reduced = np.fromiter(
            (s.budget_reduced for s in fleet.servers), bool, fleet.n
        )
        return (reduced & (smoothed > fleet.budget + _EPS)) | flags[
            self._anc_matrix
        ].any(axis=1)

    # ------------------------------------------------------- demand reports
    def _aggregate_demands(self, now: float) -> None:
        """Bottom-up smoothed-demand propagation, one level at a time."""
        fleet = self.fleet
        below = self._demand_buffer
        below[fleet.node_ids] = fleet.smoother.values
        messages = self.collector.messages
        for spec in self._levels_up:
            totals = fold_segment_sums(
                below[spec.child_ids], spec.pad_idx, spec.valid
            )
            for runtime, total in zip(spec.runtimes, totals.tolist()):
                runtime.observe_demand(total)
            messages.extend(
                [ControlMessage(now, c, True) for c in spec.child_id_list]
            )
            below[spec.node_ids] = np.fromiter(
                (r.smoothed_demand for r in spec.runtimes),
                float,
                len(spec.runtimes),
            )

    # -------------------------------------------------------------- demand
    def _sample_vm_demands(
        self, write_objects: bool = True
    ) -> Optional[np.ndarray]:
        """One tick of demand; the flat per-VM vector when available."""
        source = self.demand_source
        if isinstance(source, DemandGenerator):
            return source.sample_tick_array(write_objects=write_objects)
        source.sample_tick()
        return None

    def _host_demand_sums(self, vm_demands: Optional[np.ndarray]) -> np.ndarray:
        """Per-host VM demand sums, honouring cross-site hosting.

        The batched sum runs over the home placement (plan order, which
        matches each ``server.vms`` insertion order); VMs a federation
        coordinator moved away are zeroed out of the weights, and
        foreign guests are added afterwards in arrival order -- the
        same order the scalar controller's per-server dict sum sees.
        """
        fleet = self.fleet
        if vm_demands is None:
            return np.fromiter(
                (s.vm_demand for s in fleet.servers), float, fleet.n
            )
        weights = vm_demands
        if self._away_count:
            weights = np.where(self._vm_away, 0.0, vm_demands)
        sums = np.bincount(
            self._vm_host_rows, weights=weights, minlength=fleet.n
        )
        if self._foreign_vms:
            rows = self._foreign_rows
            for vm_id, vm in self._foreign_vms.items():
                sums[rows[vm_id]] += vm.current_demand
        return sums

    # ------------------------------------------------- federation hosting
    def vm_departed(self, vm) -> None:
        row = self._vm_row.get(vm.vm_id)
        if row is not None:
            if not self._vm_away[row]:
                self._vm_away[row] = True
                self._away_count += 1
        else:
            self._foreign_vms.pop(vm.vm_id, None)
            self._foreign_rows.pop(vm.vm_id, None)

    def vm_arrived(self, vm, dst_node_id: int) -> None:
        row = self._vm_row.get(vm.vm_id)
        if row is not None:  # a home VM returning from another site
            if self._vm_away[row]:
                self._vm_away[row] = False
                self._away_count -= 1
            self._vm_host_rows[row] = self.fleet.index[dst_node_id]
        else:
            self._foreign_vms[vm.vm_id] = vm
            self._foreign_rows[vm.vm_id] = self.fleet.index[dst_node_id]

    # --------------------------------------------------- checkpoint/restore
    def snapshot_state(self) -> Dict:
        state = super().snapshot_state()
        # The batched bookkeeping is stored verbatim rather than rebuilt
        # from VM host ids: away VMs keep a stale row on purpose, and
        # live arrivals live outside the plan-ordered row map.
        state["vectorized"] = {
            "vm_row": dict(self._vm_row),
            "vm_host_rows": self._vm_host_rows.copy(),
            "vm_away": self._vm_away.copy(),
            "away_count": self._away_count,
            "foreign_vms": dict(self._foreign_vms),
            "foreign_rows": dict(self._foreign_rows),
        }
        return state

    def restore_state(self, state: Dict) -> None:
        super().restore_state(state)
        batched = state["vectorized"]
        self._vm_row = dict(batched["vm_row"])
        self._vm_host_rows = np.array(batched["vm_host_rows"], dtype=np.intp)
        self._vm_away = np.array(batched["vm_away"], dtype=bool)
        self._away_count = int(batched["away_count"])
        self._foreign_vms = dict(batched["foreign_vms"])
        self._foreign_rows = dict(batched["foreign_rows"])
        # Re-seed every fleet array from the freshly restored objects.
        self.fleet.gather()

    # ------------------------------------------------------------- serving
    def _serve_scalar(self, server, available: float, now: float) -> float:
        """The scalar controller's per-VM priority serving loop, for
        servers whose budget cannot cover their full demand."""
        served = 0.0
        for vm in sorted(
            server.vms.values(), key=lambda v: (v.app.priority, v.vm_id)
        ):
            if vm.current_demand <= 0:
                continue
            grant = min(vm.current_demand, available - served)
            grant = max(grant, 0.0)
            unserved = vm.current_demand - grant
            if unserved > _EPS:
                self.collector.record_drop(
                    Drop(now, server.node.node_id, vm.vm_id, unserved)
                )
                self._dropped_since_consolidation += unserved
            served += grant
        return served

    # ------------------------------------------------------- supply side
    def _allocate_budgets(self, now: float) -> None:
        """Level-at-a-time proportional division (grouped waterfill)."""
        fleet = self.fleet
        caps = self._caps_buffer
        caps[fleet.node_ids] = fleet.hard_caps()
        for spec in self._levels_up:
            caps[spec.node_ids] = fold_segment_sums(
                caps[spec.child_ids], spec.pad_idx, spec.valid
            )

        self.root_budget = self.supply.at(now)
        root_id = self.tree.root.node_id
        self.internals[root_id].set_budget(
            min(self.root_budget, caps[root_id])
        )
        if self.tracer.enabled:
            self.tracer.record_root(
                self.root_budget,
                caps[root_id],
                self.internals[root_id].budget,
            )

        budgets = self._budget_buffer
        budgets[root_id] = self.internals[root_id].budget
        messages = self.collector.messages
        for spec in reversed(self._levels_up):
            # Reserve each node's colocated switch draw off the top.
            reserves = np.fromiter(
                (
                    sum(
                        self._last_switch_power[s.switch_id]
                        for s in switches
                    )
                    for switches in spec.site_switches
                ),
                float,
                len(spec.nodes),
            )
            parent_budget = np.maximum(
                budgets[spec.node_ids] - reserves, 0.0
            )
            child_caps = caps[spec.child_ids]
            if self.config.allocation_mode == "capacity":
                weights = child_caps
            else:
                # _aggregate_demands filled the buffer with every
                # node's current smoothed demand earlier this tick.
                weights = self._demand_buffer[spec.child_ids]
            allocations, _unused = allocate_level(
                parent_budget, weights, child_caps, index=spec.alloc_index
            )
            budgets[spec.child_ids] = allocations
            allocation_list = allocations.tolist()
            for runtime, allocation in zip(
                spec.child_runtimes, allocation_list
            ):
                runtime.set_budget(allocation)
            messages.extend(
                [ControlMessage(now, c, False) for c in spec.child_id_list]
            )
            if self.tracer.enabled:
                seg = spec.alloc_index.seg
                weight_list = np.asarray(weights).tolist()
                cap_list = child_caps.tolist()
                pb_list = parent_budget.tolist()
                reserve_list = reserves.tolist()
                node_id_list = [n.node_id for n in spec.nodes]
                for k, child in enumerate(spec.child_nodes):
                    g = int(seg[k])
                    self.tracer.record_allocation(
                        child.node_id,
                        node_id_list[g],
                        child.level,
                        allocation_list[k],
                        weight_list[k],
                        cap_list[k],
                        pb_list[g],
                        reserve_list[g],
                        leaf=child.is_leaf,
                        circuit_limit=(
                            self.config.circuit_limit
                            if child.is_leaf
                            else None
                        ),
                    )

    # ------------------------------------------------------ migrations
    def _execute_moves(
        self, moves: Iterable[PlannedMove], cause: MigrationCause, now: float
    ) -> None:
        moves = list(moves)
        super()._execute_moves(moves, cause, now)
        for move in moves:
            vm_id = move.vm.vm_id
            dst_row = self.fleet.index[move.dst.node_id]
            row = self._vm_row.get(vm_id)
            if row is not None:
                self._vm_host_rows[row] = dst_row
            else:  # an intra-site move of a foreign (federated) guest
                self._foreign_rows[vm_id] = dst_row

    # ------------------------------------------------------------ switches
    def _record_switches(self, now: float) -> None:
        """Scalar :meth:`WillowController._record_switches` with the
        subtree served-power sums computed level-at-a-time."""
        model = self.config.switch_model
        fleet = self.fleet
        served_below = self._served_buffer
        served_below[fleet.node_ids] = fleet.served
        for spec in self._levels_up:
            served_below[spec.node_ids] = fold_segment_sums(
                served_below[spec.child_ids], spec.pad_idx, spec.valid
            )

        ipc_traffic: Dict[int, float] = {}
        if self.ipc_graph is not None:
            for vm_a, vm_b, rate in self.ipc_graph.edges():
                host_a = self._vm_by_id[vm_a].host_id
                host_b = self._vm_by_id[vm_b].host_id
                if host_a == host_b:
                    continue
                key = (host_a, host_b) if host_a < host_b else (host_b, host_a)
                if key not in self._path_cache:
                    self._path_cache[key] = self.fabric.path(
                        self.tree.node(key[0]), self.tree.node(key[1])
                    )
                for switch, share in self._path_cache[key]:
                    ipc_traffic[switch.switch_id] = (
                        ipc_traffic.get(switch.switch_id, 0.0) + rate * share
                    )

        base = served_below[self._switch_site_ids] / self._switch_redundancy
        migration_traffic = np.zeros(len(self._switch_list))
        for switch_id, extra in ipc_traffic.items():
            base[self._switch_pos[switch_id]] += extra
        for switch_id, traffic in self._tick_migration_traffic.items():
            migration_traffic[self._switch_pos[switch_id]] += traffic
        power = model.static_power + model.watts_per_unit_traffic * (
            base + migration_traffic
        )
        base_list = base.tolist()
        migration_list = migration_traffic.tolist()
        power_list = power.tolist()
        samples = self.collector.switch_samples
        last_power = self._last_switch_power
        for i, switch in enumerate(self._switch_list):
            last_power[switch.switch_id] = power_list[i]
            samples.append(
                SwitchSample(
                    now,
                    switch.switch_id,
                    switch.level,
                    base_list[i],
                    migration_list[i],
                    power_list[i],
                )
            )
