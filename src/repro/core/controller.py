"""The Willow control loop (paper Sec. IV, evaluated in Sec. V).

:class:`WillowController` wires together every substrate -- the
hierarchy tree, switch fabric, workload, power/thermal models, FFDLR
matching -- and drives the three nested control cadences on the DES
kernel:

* every ``Delta_D``  (1 tick):   demand sampling, smoothing, upward
  demand reports, demand-driven migrations, drops, power/thermal
  bookkeeping;
* every ``Delta_S = eta1 ticks``: supply-side budget allocation from
  the root supply trace, downward budget directives;
* every ``Delta_A = eta2 ticks``: consolidation (drain + sleep) and
  wake decisions.

Quantity conventions: node-level demands/budgets/surpluses are *wall
watts*; VM demands are *dynamic watts* (the static floor stays with the
server, so moving a VM moves only its dynamic power).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Protocol

from repro.core.config import WillowConfig
from repro.core.consolidation import ConsolidationPlanner
from repro.core.events import (
    ControlMessage,
    Drop,
    Migration,
    MigrationCause,
)
from repro.core.migration import MigrationPlanner, PlannedMove
from repro.core.state import NodeRuntime, ServerRuntime
from repro.core.deficits import power_imbalance
from repro.metrics.collector import MetricsCollector, ServerSample, SwitchSample
from repro.power.budget import allocate_proportional
from repro.power.supply import SupplyTrace, constant_supply
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.thermal.model import ThermalParams
from repro.trace.tracer import Tracer, active_tracer
from repro.topology.switches import SwitchFabric
from repro.topology.tree import Node, Tree
from repro.workload.applications import SIMULATION_APPS
from repro.workload.generator import (
    DemandGenerator,
    PlacementPlan,
    random_placement,
    scale_for_target_utilization,
)

__all__ = ["DemandSource", "WillowController", "run_willow"]

_EPS = 1e-9


class DemandSource(Protocol):
    """Anything that can produce one tick of per-host demand."""

    def sample_tick(self) -> Mapping[int, float]:  # pragma: no cover
        """Update every VM's ``current_demand``; return demand per host."""
        ...


class WillowController:
    """Runs Willow over one data center.

    Parameters
    ----------
    tree:
        The power-control hierarchy (servers are the leaves).
    config:
        All tunables; see :class:`WillowConfig`.
    supply:
        Root power budget over time.
    placement:
        Initial VM placement (``plan.vms`` host ids must be leaf node
        ids of ``tree``).
    demand_source:
        Produces per-tick VM demands; defaults to a Poisson
        :class:`DemandGenerator` over ``placement`` seeded by ``seed``.
    ambient_overrides:
        Map of server *name* -> ambient temperature, for hot/cold zones
        (e.g. the Fig. 5 setup puts servers 15-18 at 40 C).
    """

    def __init__(
        self,
        tree: Tree,
        config: WillowConfig,
        supply: SupplyTrace,
        placement: PlacementPlan,
        *,
        demand_source: Optional[DemandSource] = None,
        ambient_overrides: Optional[Mapping[str, float]] = None,
        fabric: Optional[SwitchFabric] = None,
        collector: Optional[MetricsCollector] = None,
        seed: int = 0,
        ipc_graph=None,
        tracer: Optional[Tracer] = None,
    ):
        self.tree = tree
        self.config = config
        self.supply = supply
        self.placement = placement
        self.fabric = fabric or SwitchFabric(tree)
        self.collector = collector or MetricsCollector()
        self.env = Environment()
        self.streams = RandomStreams(seed)
        self.demand_source: DemandSource = demand_source or DemandGenerator(
            placement, self.streams
        )

        ambient_overrides = dict(ambient_overrides or {})
        self.servers: Dict[int, ServerRuntime] = {}
        for leaf in tree.servers():
            params: ThermalParams = config.thermal
            if leaf.name in ambient_overrides:
                params = params.with_ambient(ambient_overrides[leaf.name])
            self.servers[leaf.node_id] = ServerRuntime(leaf, config, params)
        if not self.servers:
            raise ValueError("tree has no servers")

        self.internals: Dict[int, NodeRuntime] = {
            node.node_id: NodeRuntime(node, config)
            for node in tree
            if not node.is_leaf
        }

        # Attach VMs to their servers.
        for vm in placement.vms:
            runtime = self.servers.get(vm.host_id)
            if runtime is None:
                raise ValueError(
                    f"VM {vm.vm_id} placed on unknown server id {vm.host_id}"
                )
            runtime.vms[vm.vm_id] = vm

        self.migration_planner = MigrationPlanner(
            tree, config, ipc_graph=ipc_graph
        )
        self.consolidation_planner = ConsolidationPlanner(tree, config)

        #: Optional inter-VM communication graph
        #: (:class:`repro.workload.affinity.AffinityGraph`).  Edges whose
        #: endpoints sit on different servers add their rate to the
        #: switches between the hosts every tick.
        self.ipc_graph = ipc_graph
        self._vm_by_id = {vm.vm_id: vm for vm in placement.vms}
        self._path_cache: Dict[tuple, list] = {}

        #: Observer hooks: ``on_tick(controller, tick_index, now)`` runs
        #: at the end of every tick; ``on_migration(controller,
        #: migration)`` right after each executed move.  For user
        #: instrumentation (custom logging, live dashboards, invariant
        #: checking) without subclassing.
        self.on_tick: List = []
        self.on_migration: List = []

        #: Observability: the tick tracer (see :mod:`repro.trace`).
        #: Defaults to the ambient tracer -- the shared no-op
        #: ``NULL_TRACER`` unless a ``tracing(...)`` block is active --
        #: so tracing costs one attribute check per call site when off.
        self.tracer = tracer if tracer is not None else active_tracer()
        if self.tracer.enabled:
            self.tracer.write_meta(
                tree, config, controller=type(self).__name__
            )
        self.collector.tracer = self.tracer

        self.root_budget: float = 0.0
        self._tick_index = 0
        self._dropped_since_consolidation = 0.0
        self._tick_migration_traffic: Dict[int, float] = {}
        self._last_switch_power: Dict[int, float] = {
            s.switch_id: config.switch_model.static_power
            for s in self.fabric.switches
        }

    # ------------------------------------------------------------------ run
    def run(self, n_ticks: int) -> MetricsCollector:
        """Run ``n_ticks`` demand windows and return the metrics."""
        if n_ticks < 1:
            raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")

        def loop():
            for _ in range(n_ticks):
                self._tick()
                yield self.env.timeout(self.config.delta_d)

        self.env.process(loop())
        self.env.run()
        self.tracer.flush()
        return self.collector

    # ----------------------------------------------------------------- tick
    def _tick(self) -> None:
        now = self.env.now
        config = self.config
        tracer = self.tracer
        if tracer.enabled:
            # Open this tick's frame before the plant hook so fault
            # edges recorded there land in the right frame.
            tracer.begin_tick(self._tick_index, now)
        self._tick_migration_traffic = {}

        # 0. housekeeping: expire migration costs, advance wake latency.
        for server in self.servers.values():
            server.expire_costs()
            server.tick_wake()

        # 0b. plant-fault hook: crash/restart windows, cooling ramps,
        # circuit trips and emergency evacuations advance here, before
        # demand is sampled (no-op in the ideal plant).
        self._begin_tick(now)

        # 1. sample this tick's demand.
        self.demand_source.sample_tick()

        # 2. smooth and report demand up the hierarchy.
        for server in self.servers.values():
            server.observe_demand()
        self._aggregate_demands(now)

        # 3. supply-side adaptation every Delta_S (or sooner, when a
        # plant fault invalidated the standing allocation).
        if self._allocation_due():
            self._allocate_budgets(now)

        if tracer.enabled:
            for server in self.servers.values():
                tracer.record_demand(
                    server.node.node_id,
                    server.raw_demand,
                    server.smoothed_demand,
                    server.budget,
                )

        # 4. demand-side migrations (constraint tightening only).
        # Unmatched deficits are NOT shut off wholesale: the VM stays on
        # its host and runs degraded, i.e. its service is throttled to
        # the budget in step 6 (Sec. IV-E: applications "run in a
        # degraded operational mode to stay within the power budget").
        plan = self.migration_planner.plan(self.servers, self.internals)
        self._execute_moves(plan.moves, MigrationCause.DEMAND, now)
        for vm, node in plan.dropped:
            self.collector.record_unmatched(
                Drop(now, node.node_id, vm.vm_id, vm.current_demand)
            )

        # 5. consolidation every Delta_A.
        if (
            self._tick_index > 0
            and self._tick_index % config.eta2 == 0
        ):
            self._consolidate(now)

        # 6. serve power within budget; throttle any residual excess.
        total_demand = 0.0
        for server in self.servers.values():
            total_demand += server.raw_demand
            if not server.is_awake:
                server.served_power = 0.0
                # A non-awake server normally hosts nothing; after a
                # crash, VMs stranded on it (awaiting evacuation) lose
                # their whole demand this tick.
                for vm in sorted(
                    server.vms.values(),
                    key=lambda v: (v.app.priority, v.vm_id),
                ):
                    if vm.current_demand > _EPS:
                        self.collector.record_drop(
                            Drop(
                                now,
                                server.node.node_id,
                                vm.vm_id,
                                vm.current_demand,
                            )
                        )
                        self._dropped_since_consolidation += vm.current_demand
                continue
            available = max(
                server.budget
                - server.model.static_power
                - server.migration_cost_demand,
                0.0,
            )
            # Serve VMs in priority order (lower priority value first)
            # so higher QoS classes degrade last; unserved watts are
            # recorded per VM for per-class accounting.
            served = 0.0
            for vm in sorted(
                server.vms.values(), key=lambda v: (v.app.priority, v.vm_id)
            ):
                if vm.current_demand <= 0:
                    continue
                grant = min(vm.current_demand, available - served)
                grant = max(grant, 0.0)
                unserved = vm.current_demand - grant
                if unserved > _EPS:
                    self.collector.record_drop(
                        Drop(now, server.node.node_id, vm.vm_id, unserved)
                    )
                    self._dropped_since_consolidation += unserved
                served += grant
            server.served_power = served

        # 7. thermal update and per-server sample.
        for server in self.servers.values():
            wall = server.actual_power()
            temperature = self._advance_plant(server, wall, config.delta_d)
            self.collector.record_server(
                ServerSample(
                    time=now,
                    server_id=server.node.node_id,
                    power=wall,
                    temperature=temperature,
                    utilization=server.utilization,
                    demand=server.raw_demand,
                    budget=server.budget,
                    asleep=not server.is_awake,
                )
            )

        # 8. switch traffic and power.
        self._record_switches(now)

        # 9. level-0 imbalance (Eq. 9).
        demands = [s.raw_demand for s in self.servers.values()]
        budgets = [s.budget for s in self.servers.values()]
        self.collector.record_imbalance(now, power_imbalance(demands, budgets))

        for hook in self.on_tick:
            hook(self, self._tick_index, now)

        self._tick_index += 1

    # ------------------------------------------------ plant-fault hooks
    def _begin_tick(self, now: float) -> None:
        """Hook: the plant-fault layer advances fault state here.

        Runs after housekeeping and before demand sampling.  The ideal
        plant has no faults, so the base implementation does nothing.
        """

    def _allocation_due(self) -> bool:
        """Is a supply-side allocation due this tick?

        The base cadence is every ``eta1`` ticks (Delta_S); fault-aware
        subclasses also force one when a fault transition invalidated
        the standing budgets (circuit trip, crash, ambient change).
        """
        return self._tick_index % self.config.eta1 == 0

    def _server_cap(self, server: ServerRuntime) -> float:
        """Hook: the hard cap the allocator sees for ``server``.

        The ideal plant trusts the true thermal state; the sensor-fault
        layer substitutes its *believed* temperature (possibly with an
        uncertainty margin) and zero for tripped or failed nodes.
        """
        return server.hard_cap()

    def _advance_plant(self, server: ServerRuntime, wall: float, dt: float) -> float:
        """Hook: advance the physical plant one tick; return the truth.

        The fault layer wraps this to also produce the *measured*
        temperature through the sensor models.
        """
        return server.update_temperature(wall, dt)

    def _may_wake(self, server: ServerRuntime) -> bool:
        """Hook: may consolidation wake this sleeping server now?

        The fault layer vetoes wakes into tripped circuits or zones too
        hot to even pay the static floor; the ideal plant allows all.
        """
        return True

    # -------------------------------------------- federation hosting hooks
    def vm_departed(self, vm) -> None:
        """Hook: a federation coordinator moved ``vm`` off this site.

        The scalar controller reads hosting straight from the
        ``server.vms`` dicts the coordinator already rewired, so there
        is nothing to do; the vectorized controller overrides this to
        keep its batched per-host index in sync.
        """

    def vm_arrived(self, vm, dst_node_id: int) -> None:
        """Hook: a federation coordinator placed ``vm`` on this site's
        server ``dst_node_id``.  See :meth:`vm_departed`."""

    # ------------------------------------------------------- demand reports
    def _aggregate_demands(self, now: float) -> None:
        """Propagate smoothed demand bottom-up; one message per link."""
        for level in range(1, self.tree.root.level + 1):
            for node in self.tree.nodes_at_level(level):
                total = 0.0
                for child in node.children:
                    if child.is_leaf:
                        total += self.servers[child.node_id].smoothed_demand
                    else:
                        total += self.internals[child.node_id].smoothed_demand
                    self.collector.record_message(
                        ControlMessage(now, link=child.node_id, upward=True)
                    )
                self.internals[node.node_id].observe_demand(total)

    # ------------------------------------------------------- supply side
    def _allocate_budgets(self, now: float) -> None:
        """Proportional top-down division with hard caps (Sec. IV-D)."""
        caps: Dict[int, float] = {}
        for server in self.servers.values():
            caps[server.node.node_id] = self._server_cap(server)
        for level in range(1, self.tree.root.level + 1):
            for node in self.tree.nodes_at_level(level):
                caps[node.node_id] = sum(
                    caps[child.node_id] for child in node.children
                )

        self.root_budget = self.supply.at(now)
        root_cap = caps[self.tree.root.node_id]
        self.internals[self.tree.root.node_id].set_budget(
            min(self.root_budget, root_cap)
        )
        if self.tracer.enabled:
            self.tracer.record_root(
                self.root_budget, root_cap, min(self.root_budget, root_cap)
            )

        for level in range(self.tree.root.level, 0, -1):
            for node in self.tree.nodes_at_level(level):
                runtime = self.internals[node.node_id]
                budget = runtime.budget
                # Reserve the colocated switch group's draw off the top.
                reserve = sum(
                    self._last_switch_power[s.switch_id]
                    for s in self.fabric.at_site(node)
                )
                budget = max(budget - reserve, 0.0)
                demands = []
                child_caps = []
                for child in node.children:
                    if child.is_leaf:
                        demands.append(self.servers[child.node_id].smoothed_demand)
                    else:
                        demands.append(self.internals[child.node_id].smoothed_demand)
                    child_caps.append(caps[child.node_id])
                if self.config.allocation_mode == "capacity":
                    # Equal split for identical capacities (testbed mode);
                    # the cap limits still apply inside the allocator.
                    weights = list(child_caps)
                else:
                    weights = demands
                allocations, _unused = allocate_proportional(
                    budget, weights, child_caps
                )
                for child, allocation in zip(node.children, allocations):
                    if child.is_leaf:
                        self.servers[child.node_id].set_budget(allocation)
                    else:
                        self.internals[child.node_id].set_budget(allocation)
                    self.collector.record_message(
                        ControlMessage(now, link=child.node_id, upward=False)
                    )
                if self.tracer.enabled:
                    for child, allocation, weight, cap in zip(
                        node.children, allocations, weights, child_caps
                    ):
                        self.tracer.record_allocation(
                            child.node_id,
                            node.node_id,
                            child.level,
                            allocation,
                            weight,
                            cap,
                            budget,
                            reserve,
                            leaf=child.is_leaf,
                            circuit_limit=(
                                self.config.circuit_limit
                                if child.is_leaf
                                else None
                            ),
                        )

    # ------------------------------------------------------ migrations
    def _execute_moves(
        self, moves: Iterable[PlannedMove], cause: MigrationCause, now: float
    ) -> None:
        config = self.config
        tracer = self.tracer
        for move in moves:
            src = self.servers[move.src.node_id]
            dst = self.servers[move.dst.node_id]
            vm = move.vm
            if tracer.enabled:
                # Eq. 5-9 decision inputs, captured before the move
                # mutates either runtime: the source's budget deficit
                # and the destination's surplus after the p_min margin
                # and the migration's own temporary power cost.
                src_deficit = src.smoothed_demand - src.budget
                dst_surplus = (
                    dst.budget
                    - dst.smoothed_demand
                    - config.p_min
                    - config.migration_cost_power
                )
            del src.vms[vm.vm_id]
            dst.vms[vm.vm_id] = vm
            vm.place(dst.node.node_id, now)
            src.charge_migration_cost(
                config.migration_cost_power, config.migration_cost_ticks
            )
            dst.charge_migration_cost(
                config.migration_cost_power, config.migration_cost_ticks
            )
            traffic = vm.current_demand * config.migration_traffic_factor
            for switch, share in self.fabric.path(move.src, move.dst):
                self._tick_migration_traffic[switch.switch_id] = (
                    self._tick_migration_traffic.get(switch.switch_id, 0.0)
                    + traffic * share
                )
            record = Migration(
                time=now,
                vm_id=vm.vm_id,
                src_id=move.src.node_id,
                dst_id=move.dst.node_id,
                demand=vm.current_demand,
                cause=cause,
                local=move.local,
                hops=self.fabric.hop_count(move.src, move.dst),
                cost_power=config.migration_cost_power,
            )
            self.collector.record_migration(record)
            if tracer.enabled:
                tracer.record_migration(
                    vm.vm_id,
                    move.src.node_id,
                    move.dst.node_id,
                    vm.current_demand,
                    cause.value,
                    move.local,
                    src_deficit,
                    dst_surplus,
                )
            for hook in self.on_migration:
                hook(self, record)

    # ------------------------------------------------------ consolidation
    def _consolidate(self, now: float) -> None:
        total_demand = sum(s.raw_demand for s in self.servers.values())
        plan = self.consolidation_planner.plan(
            self.servers,
            self.internals,
            recent_dropped_power=self._dropped_since_consolidation,
            root_budget=self.root_budget,
            total_demand=total_demand,
        )
        self._execute_moves(plan.moves, MigrationCause.CONSOLIDATION, now)
        for server in plan.to_sleep:
            if not server.vms:  # all moves executed; drain complete
                server.sleep()
        for server in plan.to_wake:
            if not self._may_wake(server):
                continue
            server.begin_wake()
            # Prime the demand forecast with the unserved demand the
            # server is being woken to absorb: budgets derive from
            # smoothed demand, so without this the woken server would
            # receive no budget, attract no migrations, and be drained
            # again (sleep/wake thrash).  This is the paper's step 2:
            # surplus "harnessed by bringing in additional workload".
            per_tick_dropped = self._dropped_since_consolidation / max(
                self.config.eta2, 1
            )
            forecast = min(
                self._server_cap(server),
                server.model.static_power + per_tick_dropped,
            )
            server.smoother.reset(initial=forecast)
            server.smoothed_demand = forecast
        self._dropped_since_consolidation = 0.0

    # ------------------------------------------------------------ switches
    def _record_switches(self, now: float) -> None:
        """Base traffic = served demand in the subtree; plus migrations."""
        model = self.config.switch_model
        served_below: Dict[int, float] = {}
        for server in self.servers.values():
            served_below[server.node.node_id] = server.served_power
        for level in range(1, self.tree.root.level + 1):
            for node in self.tree.nodes_at_level(level):
                served_below[node.node_id] = sum(
                    served_below[child.node_id] for child in node.children
                )
        # IPC traffic: cross-host affinity edges load the switches on
        # the path between the two hosts (future-work workload model).
        ipc_traffic: Dict[int, float] = {}
        if self.ipc_graph is not None:
            for vm_a, vm_b, rate in self.ipc_graph.edges():
                host_a = self._vm_by_id[vm_a].host_id
                host_b = self._vm_by_id[vm_b].host_id
                if host_a == host_b:
                    continue
                key = (host_a, host_b) if host_a < host_b else (host_b, host_a)
                if key not in self._path_cache:
                    self._path_cache[key] = self.fabric.path(
                        self.tree.node(key[0]), self.tree.node(key[1])
                    )
                for switch, share in self._path_cache[key]:
                    ipc_traffic[switch.switch_id] = (
                        ipc_traffic.get(switch.switch_id, 0.0) + rate * share
                    )

        for switch in self.fabric.switches:
            base = served_below[switch.site.node_id] / switch.redundancy
            base += ipc_traffic.get(switch.switch_id, 0.0)
            migration = self._tick_migration_traffic.get(switch.switch_id, 0.0)
            power = model.power(base + migration)
            self._last_switch_power[switch.switch_id] = power
            self.collector.record_switch(
                SwitchSample(
                    time=now,
                    switch_id=switch.switch_id,
                    level=switch.level,
                    base_traffic=base,
                    migration_traffic=migration,
                    power=power,
                )
            )

    # ------------------------------------------------------------- helpers
    @property
    def vms(self) -> List:
        """All VMs in the run (for stability analysis)."""
        return list(self.placement.vms)

    def server_by_name(self, name: str) -> ServerRuntime:
        """Look up a server runtime by its tree node name."""
        return self.servers[self.tree.by_name(name).node_id]

    # --------------------------------------------------- checkpoint/restore
    def _demand_source_state(self):
        source = self.demand_source
        state_dict = getattr(source, "state_dict", None)
        if state_dict is None:
            from repro.checkpoint.errors import CheckpointError

            raise CheckpointError(
                f"demand source {type(source).__name__} does not support "
                "checkpointing; give it state_dict()/load_state_dict()"
            )
        return state_dict()

    def snapshot_state(self) -> Dict:
        """Capture every mutable between-tick quantity of this run.

        The snapshot pairs with :meth:`restore_state` on a *freshly
        constructed* controller built from identical inputs (tree,
        config, supply, placement recipe, seed): construction-derived
        structure is rebuilt, run state is overlaid, and the resumed run
        reproduces the uninterrupted run bit-exactly.  VM objects are
        stored directly (one pickle payload preserves identity/sharing);
        caches (`_path_cache`) and within-tick transients
        (`_tick_migration_traffic`) are deliberately excluded.

        Valid capture points are *between* ticks, or inside an
        ``on_tick`` hook with the tick/clock fixup
        :class:`repro.checkpoint.Checkpointer` applies.
        """
        if self.config.device_classes is not None:
            from repro.checkpoint.errors import CheckpointError

            raise CheckpointError(
                "checkpointing runs with device_classes is not supported yet"
            )
        servers: Dict[int, Dict] = {}
        for sid, s in self.servers.items():
            servers[sid] = {
                "budget": s.budget,
                "previous_budget": s.previous_budget,
                "budget_reduced": s.budget_reduced,
                "sleep_state": s.sleep_state,
                "wake_ticks_left": s.wake_ticks_left,
                "pending_costs": dict(s._pending_costs),
                "raw_demand": s.raw_demand,
                "smoothed_demand": s.smoothed_demand,
                "served_power": s.served_power,
                "asleep_ticks": s.asleep_ticks,
                "failed_ticks": s.failed_ticks,
                "smoother_value": s.smoother._value,
                "t_ambient": s.thermal_params.t_ambient,
                "temperature": s.thermal.temperature,
                "peak": s.thermal.peak,
                "violations": s.thermal.violations,
            }
        internals: Dict[int, Dict] = {}
        for nid, n in self.internals.items():
            internals[nid] = {
                "budget": n.budget,
                "previous_budget": n.previous_budget,
                "budget_reduced": n.budget_reduced,
                "smoothed_demand": n.smoothed_demand,
                "smoother_value": n.smoother._value,
            }
        import dataclasses as _dc

        collector = {
            field.name: list(getattr(self.collector, field.name))
            for field in _dc.fields(self.collector)
            if isinstance(getattr(self.collector, field.name), list)
        }
        return {
            "controller": type(self).__name__,
            "tick": self._tick_index,
            "now": self.env.now,
            "root_budget": self.root_budget,
            "dropped_since_consolidation": self._dropped_since_consolidation,
            "last_switch_power": dict(self._last_switch_power),
            "streams": self.streams.state_dict(),
            "demand_source": self._demand_source_state(),
            "placement_vms": list(self.placement.vms),
            "placement_scale": self.placement.scale,
            "vm_by_id": dict(self._vm_by_id),
            "server_vms": {sid: dict(s.vms) for sid, s in self.servers.items()},
            "servers": servers,
            "internals": internals,
            "collector": collector,
        }

    def restore_state(self, state: Dict) -> None:
        """Overlay a :meth:`snapshot_state` dict onto this fresh controller.

        Must be called before :meth:`run`; the controller must have been
        constructed from the same inputs as the snapshotted one (same
        tree/config shape — validated by node-id sets — and the same
        seed, validated by the stream snapshot).
        """
        from repro.checkpoint.errors import CheckpointError

        if set(state["servers"]) != set(self.servers) or set(
            state["internals"]
        ) != set(self.internals):
            raise CheckpointError(
                "snapshot topology does not match this controller's tree"
            )
        self._tick_index = int(state["tick"])
        self.env.advance(float(state["now"]) - self.env.now)
        self.root_budget = state["root_budget"]
        self._dropped_since_consolidation = state["dropped_since_consolidation"]
        self._last_switch_power = dict(state["last_switch_power"])
        try:
            self.streams.load_state_dict(state["streams"])
        except ValueError as error:
            raise CheckpointError(str(error)) from None
        load = getattr(self.demand_source, "load_state_dict", None)
        if load is None:
            raise CheckpointError(
                f"demand source {type(self.demand_source).__name__} does not "
                "support checkpointing"
            )
        load(state["demand_source"])

        # Adopt the snapshot's VM objects wholesale: live runs may hold
        # VMs (arrivals, federation guests) that a fresh construction
        # cannot know about.  placement.vms is mutated in place so the
        # demand source's plan reference stays coherent.
        self.placement.vms[:] = state["placement_vms"]
        self.placement.scale = state["placement_scale"]
        self._vm_by_id = dict(state["vm_by_id"])
        for sid, runtime in self.servers.items():
            runtime.vms = dict(state["server_vms"][sid])
            data = state["servers"][sid]
            runtime.budget = data["budget"]
            runtime.previous_budget = data["previous_budget"]
            runtime.budget_reduced = data["budget_reduced"]
            runtime.sleep_state = data["sleep_state"]
            runtime.wake_ticks_left = data["wake_ticks_left"]
            runtime._pending_costs = dict(data["pending_costs"])
            runtime.raw_demand = data["raw_demand"]
            runtime.smoothed_demand = data["smoothed_demand"]
            runtime.served_power = data["served_power"]
            runtime.asleep_ticks = data["asleep_ticks"]
            runtime.failed_ticks = data["failed_ticks"]
            runtime.smoother._value = data["smoother_value"]
            if data["t_ambient"] != runtime.thermal_params.t_ambient:
                runtime.set_ambient(data["t_ambient"])
            runtime.thermal.temperature = data["temperature"]
            runtime.thermal.peak = data["peak"]
            runtime.thermal.violations = data["violations"]
        for nid, runtime in self.internals.items():
            data = state["internals"][nid]
            runtime.budget = data["budget"]
            runtime.previous_budget = data["previous_budget"]
            runtime.budget_reduced = data["budget_reduced"]
            runtime.smoothed_demand = data["smoothed_demand"]
            runtime.smoother._value = data["smoother_value"]
        import dataclasses as _dc

        collector_fields = {
            field.name
            for field in _dc.fields(self.collector)
            if isinstance(getattr(self.collector, field.name), list)
        }
        if set(state["collector"]) - collector_fields:
            raise CheckpointError(
                "snapshot has collector tables this build does not know: "
                f"{sorted(set(state['collector']) - collector_fields)}"
            )
        for name in collector_fields:
            rows = getattr(self.collector, name)
            rows[:] = state["collector"].get(name, [])


def run_willow(
    *,
    tree: Optional[Tree] = None,
    config: Optional[WillowConfig] = None,
    supply: Optional[SupplyTrace] = None,
    target_utilization: float = 0.4,
    n_ticks: int = 100,
    seed: int = 0,
    apps: tuple = SIMULATION_APPS,
    vms_per_server: int = 4,
    ambient_overrides: Optional[Mapping[str, float]] = None,
    vectorized: bool = False,
    tracer: Optional[Tracer] = None,
) -> tuple:
    """Build and run a complete Willow simulation in one call.

    Defaults reproduce the paper's simulation environment: the Fig. 3
    topology (4 levels, 18 servers), a supply close to the servers'
    maximum power limit, the 1/2/5/9 application mix, and Poisson
    demand scaled to ``target_utilization``.

    ``vectorized=True`` runs the array-based tick path
    (:class:`repro.core.vectorized.VectorizedWillowController`), a
    behavioural twin of the scalar loop that is much faster on large
    fleets; see docs/performance.md.

    Returns ``(controller, collector)``.
    """
    from repro.topology.builders import build_paper_simulation

    tree = tree or build_paper_simulation()
    config = config or WillowConfig()
    servers = tree.servers()
    if supply is None:
        supply = constant_supply(len(servers) * config.circuit_limit)

    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in servers],
        apps,
        streams["placement"],
        vms_per_server=vms_per_server,
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, target_utilization
    )
    controller_cls = WillowController
    if vectorized:
        from repro.core.vectorized import VectorizedWillowController

        controller_cls = VectorizedWillowController
    controller = controller_cls(
        tree,
        config,
        supply,
        placement,
        ambient_overrides=ambient_overrides,
        seed=seed,
        tracer=tracer,
    )
    collector = controller.run(n_ticks)
    return controller, collector
