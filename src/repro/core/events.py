"""Control-plane records: migrations, drops, budget changes, messages.

These are the events Willow's evaluation counts (Figs. 9-12, 16) and the
units the network-impact accounting works in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "MigrationCause",
    "Migration",
    "Drop",
    "BudgetChange",
    "ControlMessage",
    "PlantEvent",
]


class MigrationCause(enum.Enum):
    """Why a VM moved (Fig. 9 splits migration counts by these)."""

    DEMAND = "demand"  # constraint tightening: deficit at the source
    CONSOLIDATION = "consolidation"  # draining an under-utilised server
    EVACUATION = "evacuation"  # emergency: host crashed or shut down

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Migration:
    """One executed VM migration."""

    time: float
    vm_id: int
    src_id: int
    dst_id: int
    demand: float  # VM demand (W) at migration time
    cause: MigrationCause
    local: bool  # True when src and dst share a parent (Sec. IV-E)
    hops: int  # switch sites traversed
    cost_power: float  # temporary power charged to src and dst

    def __post_init__(self) -> None:
        if self.src_id == self.dst_id:
            raise ValueError("migration source and destination are the same node")
        if self.demand < 0:
            raise ValueError("migrated demand must be non-negative")


@dataclass(frozen=True, slots=True)
class Drop:
    """Demand shed because no surplus could absorb it (QoS loss).

    "If there is no surplus that can satisfy the deficit in a node, the
    excess demand is simply dropped" (Sec. IV-E).
    """

    time: float
    node_id: int
    vm_id: Optional[int]
    power: float

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ValueError("dropped power must be non-negative")


@dataclass(frozen=True, slots=True)
class BudgetChange:
    """A supply-side budget update at one node."""

    time: float
    node_id: int
    old_budget: float
    new_budget: float

    @property
    def reduced(self) -> bool:
        """Did this event tighten the node's constraint?"""
        return self.new_budget < self.old_budget - 1e-9


@dataclass(frozen=True, slots=True)
class PlantEvent:
    """One physical-plant fault transition (crash, trip, quarantine...).

    ``kind`` is a short slug -- the fault layer uses ``server_crash``,
    ``server_restart``, ``server_recovered``, ``thermal_shutdown``,
    ``sensor_quarantine``, ``sensor_restore``, ``circuit_trip``,
    ``circuit_restore``, ``cooling_degraded`` and ``cooling_restored``.
    ``node_id`` is the affected tree node (server or PMU subtree root);
    ``detail`` carries free-form context for logs.
    """

    time: float
    kind: str
    node_id: int
    detail: str = ""

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("plant event kind must be non-empty")


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """One message on a tree link (Property 3 counts these).

    ``link`` identifies the (child, parent) edge by the child's node id;
    ``upward`` is True for demand reports, False for budget directives.
    """

    time: float
    link: int
    upward: bool
