"""``python -m repro`` -- package overview and a one-shot demo run.

Usage::

    python -m repro            # overview + 30-tick demo summary
    python -m repro --no-demo  # overview only
"""

from __future__ import annotations

import sys

import repro


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    print(f"repro {repro.__version__} -- Willow (IPDPS 2011) reproduction")
    print()
    print("entry points:")
    print("  python -m repro.experiments.runner all   # every paper fig/table")
    print("  python -m repro.experiments.report out.md  # markdown report")
    print("  pytest tests/                            # test suite")
    print("  pytest benchmarks/ --benchmark-only      # asserted benchmarks")
    print("  examples/quickstart.py and 9 more        # runnable scenarios")
    if "--no-demo" in argv:
        return 0
    print()
    print("demo: 18 servers, hot zone on 15-18, U=50%, 30 ticks")
    from repro.core import run_willow
    from repro.metrics import summarize_run

    hot = {f"server-{i}": 40.0 for i in range(15, 19)}
    _controller, collector = run_willow(
        target_utilization=0.5, n_ticks=30, seed=0, ambient_overrides=hot
    )
    print(summarize_run(collector).format())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
