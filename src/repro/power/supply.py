"""Time-varying power-supply traces.

Willow's whole premise is a *varying* power budget at the root of the
hierarchy: renewable sources, under-provisioned circuits, cooling
deficits.  A :class:`SupplyTrace` maps simulation time to the total
budget available to the data-center PMU.  Constructors reproduce the
paper's experimental profiles:

* :func:`deficit_supply_trace` -- the Fig. 15 energy-deficient pattern
  with deep plunges at chosen instants (the paper's plunges sit at time
  units 7, 12 and 25 with the first persisting until unit 10).
* :func:`plenty_supply_trace` -- the Fig. 19 energy-plenty pattern with
  the mean near the full-utilization draw of all servers (~750 W for
  the 3-server testbed).
* :func:`renewable_supply` -- a solar-like diurnal profile with cloud
  noise, for the renewable-energy examples.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "SupplyTrace",
    "constant_supply",
    "step_supply",
    "deficit_supply_trace",
    "plenty_supply_trace",
    "renewable_supply",
]


@dataclass(frozen=True)
class SupplyTrace:
    """Piecewise-constant total power budget over time.

    ``times`` are the start instants of each segment (strictly
    increasing, first entry 0); ``budgets`` the corresponding budgets in
    watts.  The final budget holds forever.
    """

    times: tuple
    budgets: tuple

    def __post_init__(self) -> None:
        if len(self.times) != len(self.budgets):
            raise ValueError("times and budgets must have equal length")
        if not self.times:
            raise ValueError("trace must have at least one segment")
        # NaN slips through ordering comparisons (every comparison with
        # NaN is False), so finiteness is checked explicitly.
        if any(not math.isfinite(t) for t in self.times):
            raise ValueError("times must be finite")
        if any(not math.isfinite(b) for b in self.budgets):
            raise ValueError("budgets must be finite")
        if self.times[0] != 0:
            raise ValueError(f"first segment must start at 0, got {self.times[0]}")
        if any(b < 0 for b in self.budgets):
            raise ValueError("budgets must be non-negative")
        if any(t1 >= t2 for t1, t2 in zip(self.times, self.times[1:])):
            raise ValueError("times must be strictly increasing")

    def at(self, time: float) -> float:
        """Budget in force at simulation ``time``."""
        # NaN compares False with 0, so check finiteness explicitly.
        if not math.isfinite(time) or time < 0:
            raise ValueError(f"time must be finite and >= 0, got {time}")
        index = bisect_right(self.times, time) - 1
        return float(self.budgets[index])

    def mean(self, horizon: float) -> float:
        """Time-average budget over ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.mean_between(0.0, horizon)

    def mean_between(self, t0: float, t1: float) -> float:
        """Segment-exact time-average budget over ``[t0, t1]``.

        The final budget holds forever, so the window may extend past
        the last segment start.  A ``t0`` landing exactly on a segment
        boundary reads the segment *starting* there (the same half-open
        convention as :meth:`at`).
        """
        if not math.isfinite(t0) or t0 < 0:
            raise ValueError(f"t0 must be finite and >= 0, got {t0}")
        if not math.isfinite(t1) or t1 <= t0:
            raise ValueError(f"t1 must be finite and > t0, got {t1}")
        index = bisect_right(self.times, t0) - 1
        total = 0.0
        while True:
            seg_end = (
                self.times[index + 1]
                if index + 1 < len(self.times)
                else math.inf
            )
            lo = max(self.times[index], t0)
            hi = min(seg_end, t1)
            if hi > lo:
                total += self.budgets[index] * (hi - lo)
            if seg_end >= t1:
                break
            index += 1
        return total / (t1 - t0)

    def window(self, t0: float, horizon: float) -> "SupplyTrace":
        """The forecast window ``[t0, t0 + horizon)`` re-based to time 0.

        Returns a new :class:`SupplyTrace` whose segment boundaries are
        the clipped originals; the budget in force at ``t0`` becomes the
        first segment.  Receding-horizon planners read this instead of
        the whole trace.
        """
        if not math.isfinite(t0) or t0 < 0:
            raise ValueError(f"t0 must be finite and >= 0, got {t0}")
        if not math.isfinite(horizon) or horizon <= 0:
            raise ValueError(f"horizon must be finite and positive, got {horizon}")
        start = bisect_right(self.times, t0) - 1
        times = [0.0]
        budgets = [self.budgets[start]]
        end = t0 + horizon
        for t, b in zip(self.times[start + 1:], self.budgets[start + 1:]):
            if t >= end:
                break
            times.append(t - t0)
            budgets.append(b)
        return SupplyTrace(tuple(times), tuple(budgets))

    def scaled(self, factor: float) -> "SupplyTrace":
        """A copy with every budget multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return SupplyTrace(self.times, tuple(b * factor for b in self.budgets))

    def series(self, times: Sequence[float]) -> np.ndarray:
        """Vector of budgets sampled at each instant in ``times``.

        One vectorized ``searchsorted`` lookup (the federation planner
        samples every site's trace each supply period), with the same
        finite/``>= 0`` validation as :meth:`at`.
        """
        t = np.asarray(times, dtype=float)
        if t.size == 0:
            return np.empty(0, dtype=float)
        if not np.all(np.isfinite(t)) or np.any(t < 0):
            raise ValueError("times must be finite and >= 0")
        index = np.searchsorted(np.asarray(self.times), t, side="right") - 1
        return np.asarray(self.budgets, dtype=float)[index]


def constant_supply(budget: float) -> SupplyTrace:
    """A flat budget."""
    return SupplyTrace((0.0,), (float(budget),))


def supply_from_csv(path) -> SupplyTrace:
    """Load a trace from CSV with ``time,budget`` rows.

    A single non-numeric header row is tolerated.  Times must start at
    0 and increase strictly, as for :func:`step_supply`.
    """
    import csv as _csv
    from pathlib import Path

    segments = []
    with Path(path).open(newline="") as handle:
        for record in _csv.reader(handle):
            if not record:
                continue
            try:
                segments.append((float(record[0]), float(record[1])))
            except (ValueError, IndexError):
                if segments:
                    raise ValueError(
                        f"malformed row after data began: {record!r}"
                    )
                continue  # header
    if not segments:
        raise ValueError(f"no supply rows found in {path}")
    return step_supply(segments)


def step_supply(segments: Sequence[tuple]) -> SupplyTrace:
    """Build a trace from explicit ``(start_time, budget)`` pairs."""
    times = tuple(float(t) for t, _ in segments)
    budgets = tuple(float(b) for _, b in segments)
    return SupplyTrace(times, budgets)


def deficit_supply_trace(
    nominal: float,
    *,
    plunge_depth: float = 0.45,
    plunges: Sequence[tuple] = ((7.0, 10.0), (12.0, 14.0), (25.0, 27.0)),
    ripple: float = 0.05,
    period: float = 30.0,
    resolution: float = 1.0,
    rng: np.random.Generator | None = None,
) -> SupplyTrace:
    """The Fig. 15 energy-deficient pattern.

    ``nominal`` watts with small ripple, interrupted by deep plunges
    (to ``(1 - plunge_depth) * nominal``) over the given
    ``(start, end)`` windows.  Defaults place plunges at time units
    7-10, 12-14 and 25-27 as read off Fig. 15/16.
    """
    if not 0.0 < plunge_depth < 1.0:
        raise ValueError("plunge_depth must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng(2011)
    times = np.arange(0.0, period, resolution)
    budgets = np.full(len(times), nominal, dtype=float)
    if ripple > 0:
        budgets *= 1.0 + rng.uniform(-ripple, ripple, size=len(times))
    for start, end in plunges:
        mask = (times >= start) & (times < end)
        budgets[mask] = nominal * (1.0 - plunge_depth)
    return SupplyTrace(tuple(times.tolist()), tuple(budgets.tolist()))


def plenty_supply_trace(
    full_power: float,
    *,
    ripple: float = 0.06,
    period: float = 30.0,
    resolution: float = 1.0,
    rng: np.random.Generator | None = None,
) -> SupplyTrace:
    """The Fig. 19 energy-plenty pattern.

    Mean budget near ``full_power`` (the draw of all servers at 100 %
    utilization; ~750 W for the testbed) with mild variation and no
    sustained deficit.
    """
    if rng is None:
        rng = np.random.default_rng(2019)
    times = np.arange(0.0, period, resolution)
    budgets = full_power * (1.0 + rng.uniform(-ripple, ripple, size=len(times)))
    return SupplyTrace(tuple(times.tolist()), tuple(budgets.tolist()))


def renewable_supply(
    peak: float,
    *,
    base_fraction: float = 0.25,
    day_length: float = 96.0,
    cloud_noise: float = 0.15,
    resolution: float = 1.0,
    days: int = 1,
    phase: float = 0.0,
    rng: np.random.Generator | None = None,
) -> SupplyTrace:
    """A solar-like diurnal budget: grid base plus a sinusoidal solar hump.

    ``base_fraction * peak`` is always available (grid/UPS); the solar
    contribution follows a half-sine over each day with multiplicative
    cloud noise.  ``phase`` shifts the day by that fraction of
    ``day_length`` -- e.g. 0.5 puts a site half a day ahead, which is
    how the federation experiment builds anti-correlated solar across
    longitudes.  Used by the renewable-data-center example.
    """
    if not 0.0 <= base_fraction <= 1.0:
        raise ValueError("base_fraction must be in [0, 1]")
    if rng is None:
        rng = np.random.default_rng(7)
    times = np.arange(0.0, day_length * days, resolution)
    day_pos = ((times % day_length) / day_length + phase) % 1.0  # 0..1/day
    solar = np.clip(np.sin(np.pi * day_pos), 0.0, None)
    if cloud_noise > 0:
        solar = solar * np.clip(
            1.0 + rng.normal(0.0, cloud_noise, size=len(times)), 0.0, None
        )
    budgets = peak * (base_fraction + (1.0 - base_fraction) * solar)
    budgets = np.clip(budgets, 0.0, None)
    return SupplyTrace(tuple(times.tolist()), tuple(budgets.tolist()))
