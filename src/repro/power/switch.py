"""Switch power model (paper Sec. V-B5).

"We assume that the switch power consumption has two parts - static and
dynamic.  The dynamic portion of the power consumption in a switch is
directly proportional to the amount of traffic it handles.  The static
part is fixed and is very small."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SwitchPowerModel", "SIMULATION_SWITCH"]


@dataclass(frozen=True)
class SwitchPowerModel:
    """Static + traffic-proportional switch power.

    Attributes
    ----------
    static_power:
        Fixed draw while the switch is on (W); small per the paper.
    watts_per_unit_traffic:
        Dynamic watts per unit of traffic handled.
    capacity:
        Maximum traffic the switch can carry per tick; used both to cap
        migration throughput and to normalise traffic figures (Fig. 10).
    """

    static_power: float
    watts_per_unit_traffic: float
    capacity: float

    def __post_init__(self) -> None:
        if self.static_power < 0:
            raise ValueError(f"static_power must be >= 0, got {self.static_power}")
        if self.watts_per_unit_traffic <= 0:
            raise ValueError(
                f"watts_per_unit_traffic must be > 0, got {self.watts_per_unit_traffic}"
            )
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")

    @property
    def max_power(self) -> float:
        """Power at full traffic capacity (W)."""
        return self.static_power + self.watts_per_unit_traffic * self.capacity

    def power(self, traffic):
        """Power (W) while handling ``traffic`` units this tick."""
        t = np.asarray(traffic, dtype=float)
        if np.any(t < 0):
            raise ValueError("traffic must be non-negative")
        result = self.static_power + self.watts_per_unit_traffic * t
        return float(result) if result.ndim == 0 else result

    def utilization(self, traffic):
        """Fraction of capacity in use."""
        t = np.asarray(traffic, dtype=float)
        result = np.clip(t / self.capacity, 0.0, None)
        return float(result) if result.ndim == 0 else result


#: Simulation calibration: a level-1 switch serving 3 servers of up to
#: 450 W each.  Traffic is measured in "demand watts served": a switch
#: carrying the full dynamic demand of its 3 servers is at capacity.
#: Dynamic range dominates (static floor of 5 W), matching the paper's
#: "static part is very small" idealisation; full load draws ~68 W,
#: about 15 % of a server -- typical for ToR gear.
SIMULATION_SWITCH = SwitchPowerModel(
    static_power=5.0, watts_per_unit_traffic=0.05, capacity=1260.0
)
