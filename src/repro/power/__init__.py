"""Power models, supply traces, demand smoothing, budget allocation.

* :mod:`repro.power.server` -- server power as a function of utilization
  (linear in the bottleneck resource; Sec. IV-C, Table I).
* :mod:`repro.power.switch` -- static + traffic-proportional switch
  power (Sec. V-B5).
* :mod:`repro.power.supply` -- time-varying power-supply traces: the
  Fig. 15 energy-deficient pattern, the Fig. 19 energy-plenty pattern,
  renewable (solar-like) profiles, and generic step/constant traces.
* :mod:`repro.power.smoothing` -- exponential demand smoothing (Eq. 4).
* :mod:`repro.power.budget` -- demand-proportional budget division with
  hard caps and the three-step surplus redistribution (Sec. IV-D).
"""

from repro.power.server import ServerPowerModel, SIMULATION_SERVER, TESTBED_SERVER
from repro.power.switch import SwitchPowerModel, SIMULATION_SWITCH
from repro.power.supply import (
    SupplyTrace,
    constant_supply,
    deficit_supply_trace,
    plenty_supply_trace,
    renewable_supply,
    step_supply,
    supply_from_csv,
)
from repro.power.smoothing import ExponentialSmoother, HoltSmoother, smooth_series
from repro.power.budget import allocate_proportional, redistribute_surplus
from repro.power.battery import (
    Battery,
    BatterySpec,
    buffer_supply,
    buffer_supply_with_plan,
    parse_battery_spec,
)

__all__ = [
    "Battery",
    "BatterySpec",
    "ExponentialSmoother",
    "HoltSmoother",
    "SIMULATION_SERVER",
    "SIMULATION_SWITCH",
    "ServerPowerModel",
    "SupplyTrace",
    "SwitchPowerModel",
    "TESTBED_SERVER",
    "allocate_proportional",
    "buffer_supply",
    "buffer_supply_with_plan",
    "constant_supply",
    "parse_battery_spec",
    "deficit_supply_trace",
    "plenty_supply_trace",
    "redistribute_surplus",
    "renewable_supply",
    "smooth_series",
    "step_supply",
    "supply_from_csv",
]
