"""Demand-proportional budget division with hard caps (paper Sec. IV-D).

"The available power budget of any level l+1 is allocated among the
nodes in level l proportional to their demands", subject to *hard*
constraints (thermal cap from Eq. 3, circuit rating) and *soft*
constraints (sibling shares).  When the parent's budget increases, three
actions follow in order: (1) under-provisioned nodes are topped up to
their demand, (2) surplus can be harnessed by bringing in workload
(handled by the controller), (3) remaining surplus is spread over the
children proportional to demand.

The allocator below is a capped proportional waterfill.  It never
exceeds a node's hard cap, never hands out more than the parent budget,
and in a surplus regime guarantees every node at least
``min(demand, cap)``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["allocate_proportional", "redistribute_surplus"]

_EPS = 1e-12


def allocate_proportional(
    total: float,
    demands: Sequence[float],
    caps: Sequence[float] | None = None,
) -> Tuple[np.ndarray, float]:
    """Divide ``total`` watts among children proportional to ``demands``.

    Parameters
    ----------
    total:
        Parent budget to divide (W).
    demands:
        Smoothed power demand of each child (W, non-negative).
    caps:
        Hard per-child limits (thermal and circuit); ``None`` means
        unconstrained.

    Returns
    -------
    (allocations, unallocated):
        ``allocations[i]`` is child ``i``'s budget; ``unallocated`` is
        the part of ``total`` no child could absorb (all children at
        their caps, or zero demand everywhere).  Invariants::

            allocations >= 0
            allocations <= caps                 (elementwise)
            allocations.sum() + unallocated == total   (within float eps)

        In a surplus regime (``total >= sum(min(demand, cap))``) every
        child additionally receives at least ``min(demand, cap)``.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 1:
        raise ValueError("demands must be 1-D")
    if np.any(demands < 0):
        raise ValueError("demands must be non-negative")
    n = len(demands)
    if caps is None:
        caps = np.full(n, np.inf)
    else:
        caps = np.asarray(caps, dtype=float)
        if caps.shape != demands.shape:
            raise ValueError("caps must match demands in shape")
        if np.any(caps < 0):
            raise ValueError("caps must be non-negative")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n == 0 or total == 0:
        return np.zeros(n), float(total)

    satisfiable = np.minimum(demands, caps)
    need = satisfiable.sum()

    if total <= need + _EPS:
        # Deficit regime: waterfill `total` proportional to demand, no
        # child receiving more than min(demand, cap).
        alloc = _waterfill(total, weights=demands, limits=satisfiable)
        return alloc, float(max(total - alloc.sum(), 0.0))

    # Surplus regime: top everyone up to min(demand, cap) first...
    alloc = satisfiable.copy()
    leftover = total - need
    # ...then spread the surplus proportional to demand within caps.
    # A vanishing uniform weight floor implements the paper's step 2
    # ("the available surplus can be harnessed by bringing in
    # additional workload"): zero-demand children receive surplus only
    # once every demand-weighted child has hit its cap, at which point
    # the leftover flows to idle capacity instead of being stranded.
    headroom = caps - alloc
    floor = max(float(demands.sum()), 1.0) * 1e-9
    extra = _waterfill(leftover, weights=demands + floor, limits=headroom)
    alloc = alloc + extra
    return alloc, float(max(total - alloc.sum(), 0.0))


def redistribute_surplus(
    allocations: Sequence[float],
    demands: Sequence[float],
    caps: Sequence[float],
    surplus: float,
) -> np.ndarray:
    """Step-3 surplus redistribution on top of existing ``allocations``.

    Adds ``surplus`` watts to the given allocations, proportional to
    demand and limited by each node's remaining cap headroom.  Returns
    the new allocation vector.
    """
    allocations = np.asarray(allocations, dtype=float)
    demands = np.asarray(demands, dtype=float)
    caps = np.asarray(caps, dtype=float)
    if surplus < 0:
        raise ValueError("surplus must be non-negative")
    headroom = np.maximum(caps - allocations, 0.0)
    extra = _waterfill(surplus, weights=demands, limits=headroom)
    return allocations + extra


def _waterfill(
    amount: float, weights: np.ndarray, limits: np.ndarray
) -> np.ndarray:
    """Distribute ``amount`` proportional to ``weights`` under ``limits``.

    Iteratively hands each unconstrained node its proportional share,
    clips at the limit, and redistributes the excess among the rest.
    Terminates in at most ``n`` rounds (each round saturates at least
    one node or distributes everything).
    """
    n = len(weights)
    alloc = np.zeros(n)
    remaining = float(amount)
    active = (weights > 0) & (limits > _EPS)
    for _ in range(n + 1):
        if remaining <= _EPS or not active.any():
            break
        weight_sum = weights[active].sum()
        share = np.zeros(n)
        share[active] = remaining * weights[active] / weight_sum
        new_alloc = np.minimum(alloc + share, limits)
        distributed = (new_alloc - alloc).sum()
        alloc = new_alloc
        remaining -= distributed
        active = active & (alloc < limits - _EPS)
        if distributed <= _EPS:
            break
    return alloc
