"""Demand-proportional budget division with hard caps (paper Sec. IV-D).

"The available power budget of any level l+1 is allocated among the
nodes in level l proportional to their demands", subject to *hard*
constraints (thermal cap from Eq. 3, circuit rating) and *soft*
constraints (sibling shares).  When the parent's budget increases, three
actions follow in order: (1) under-provisioned nodes are topped up to
their demand, (2) surplus can be harnessed by bringing in workload
(handled by the controller), (3) remaining surplus is spread over the
children proportional to demand.

The allocator below is a capped proportional waterfill.  It never
exceeds a node's hard cap, never hands out more than the parent budget,
and in a surplus regime guarantees every node at least
``min(demand, cap)``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "allocate_proportional",
    "allocate_level",
    "LevelIndex",
    "redistribute_surplus",
]

_EPS = 1e-12


class LevelIndex:
    """Precomputed group structure for :func:`allocate_level`.

    Derives the element->group map and the padded (group, slot) index
    matrix from ``offsets`` once, so repeated allocations over the same
    tree level (the per-tick hot path) skip the setup cost.
    """

    def __init__(self, offsets: np.ndarray, n_children: int):
        offsets = np.asarray(offsets, dtype=np.intp)
        n_groups = len(offsets)
        if n_groups == 0:
            raise ValueError("offsets must be non-empty")
        if offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        sizes = np.diff(np.append(offsets, n_children))
        if np.any(sizes < 1):
            raise ValueError("every group must have at least one child")
        self.offsets = offsets
        self.n_groups = n_groups
        self.n_children = int(n_children)
        self.sizes = sizes
        #: element -> group map
        self.seg = np.repeat(np.arange(n_groups), sizes)
        self.max_size = int(sizes.max())
        slots = np.arange(self.max_size)
        #: mask of real (group, slot) cells in the padded matrix
        self.valid = slots[None, :] < sizes[:, None]
        #: flat index of each (group, slot) cell, 0 where absent
        self.pad_idx = np.where(
            self.valid, offsets[:, None] + slots[None, :], 0
        )

    def segment_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-group sums as a left-to-right fold across slot columns
        (the exact order the scalar path's ``.sum()`` uses per group)."""
        padded = np.where(self.valid, values[self.pad_idx], 0.0)
        acc = padded[:, 0].copy()
        for j in range(1, self.max_size):
            acc += padded[:, j]
        return acc


def allocate_proportional(
    total: float,
    demands: Sequence[float],
    caps: Sequence[float] | None = None,
) -> Tuple[np.ndarray, float]:
    """Divide ``total`` watts among children proportional to ``demands``.

    Parameters
    ----------
    total:
        Parent budget to divide (W).
    demands:
        Smoothed power demand of each child (W, non-negative).
    caps:
        Hard per-child limits (thermal and circuit); ``None`` means
        unconstrained.

    Returns
    -------
    (allocations, unallocated):
        ``allocations[i]`` is child ``i``'s budget; ``unallocated`` is
        the part of ``total`` no child could absorb (all children at
        their caps, or zero demand everywhere).  Invariants::

            allocations >= 0
            allocations <= caps                 (elementwise)
            allocations.sum() + unallocated == total   (within float eps)

        In a surplus regime (``total >= sum(min(demand, cap))``) every
        child additionally receives at least ``min(demand, cap)``.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 1:
        raise ValueError("demands must be 1-D")
    if np.any(demands < 0):
        raise ValueError("demands must be non-negative")
    n = len(demands)
    if caps is None:
        caps = np.full(n, np.inf)
    else:
        caps = np.asarray(caps, dtype=float)
        if caps.shape != demands.shape:
            raise ValueError("caps must match demands in shape")
        if np.any(caps < 0):
            raise ValueError("caps must be non-negative")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n == 0 or total == 0:
        return np.zeros(n), float(total)

    satisfiable = np.minimum(demands, caps)
    need = satisfiable.sum()

    if total <= need + _EPS:
        # Deficit regime: waterfill `total` proportional to demand, no
        # child receiving more than min(demand, cap).
        alloc = _waterfill(total, weights=demands, limits=satisfiable)
        return alloc, float(max(total - alloc.sum(), 0.0))

    # Surplus regime: top everyone up to min(demand, cap) first...
    alloc = satisfiable.copy()
    leftover = total - need
    # ...then spread the surplus proportional to demand within caps.
    # A vanishing uniform weight floor implements the paper's step 2
    # ("the available surplus can be harnessed by bringing in
    # additional workload"): zero-demand children receive surplus only
    # once every demand-weighted child has hit its cap, at which point
    # the leftover flows to idle capacity instead of being stranded.
    headroom = caps - alloc
    # Proportional to the demand sum so the allocation is scale
    # invariant; the 1.0 W stand-in only applies when demand is zero
    # everywhere (uniform weights, still scale invariant).
    demand_sum = float(demands.sum())
    floor = (demand_sum if demand_sum > 0.0 else 1.0) * 1e-9
    extra = _waterfill(leftover, weights=demands + floor, limits=headroom)
    alloc = alloc + extra
    return alloc, float(max(total - alloc.sum(), 0.0))


def allocate_level(
    totals: np.ndarray,
    weights: np.ndarray,
    caps: np.ndarray,
    offsets: np.ndarray | None = None,
    *,
    index: LevelIndex | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run :func:`allocate_proportional` for many sibling groups at once.

    The per-tick hot path divides every internal node's budget among its
    children; calling the scalar allocator per node costs one round of
    NumPy small-array overhead per group.  This version runs the same
    capped proportional waterfill for a whole tree level in one set of
    array operations, grouped by ``offsets``.

    Parameters
    ----------
    totals:
        Parent budget per group, shape ``(G,)``.
    weights:
        Allocation weights of all children, concatenated group by
        group, shape ``(C,)``.  (Smoothed demands in ``"demand"`` mode,
        capacities in ``"capacity"`` mode -- the same array the scalar
        path passes as ``demands``.)
    caps:
        Hard per-child limits, shape ``(C,)``.
    offsets:
        Start index of each group in the flat arrays, shape ``(G,)``,
        ``offsets[0] == 0``; every group must be non-empty.  May be
        omitted when ``index`` is given.
    index:
        A :class:`LevelIndex` built for this level, to amortise the
        group-structure setup across calls.

    Returns
    -------
    (allocations, unallocated):
        Flat per-child allocations, and the per-group unallocated watts.
        For groups of fewer than 8 children (every topology in this
        repo) the results are bit-identical to calling
        :func:`allocate_proportional` once per group: the same IEEE-754
        operations run in the same order per lane.  (At 8+ children
        NumPy's pairwise summation reorders scalar-path sums at the ulp
        level; the grouped path stays a plain left-to-right fold.)
    """
    totals = np.asarray(totals, dtype=float)
    weights = np.asarray(weights, dtype=float)
    caps = np.asarray(caps, dtype=float)
    n_groups = len(totals)
    n_children = len(weights)
    if n_groups == 0:
        return np.zeros(0), np.zeros(0)
    if index is None:
        if offsets is None:
            raise ValueError("either offsets or index is required")
        index = LevelIndex(offsets, n_children)
    if index.n_groups != n_groups or index.n_children != n_children:
        raise ValueError("index shape does not match totals/weights")
    if np.any(weights < 0) or np.any(caps < 0) or np.any(totals < 0):
        raise ValueError("totals, weights and caps must be non-negative")

    seg = index.seg
    segment_sums = index.segment_sums
    max_size = index.max_size

    satisfiable = np.minimum(weights, caps)
    need = segment_sums(satisfiable)
    deficit = totals <= need + _EPS

    # Deficit groups waterfill the whole budget under min(weight, cap);
    # surplus groups start from `satisfiable` and waterfill the leftover
    # under the cap headroom with the vanishing uniform weight floor
    # (see allocate_proportional).
    weight_sums = segment_sums(weights)
    floor = np.where(weight_sums > 0.0, weight_sums, 1.0) * 1e-9
    fill_amount = np.where(deficit, totals, totals - need)
    fill_weights = np.where(deficit[seg], weights, weights + floor[seg])
    fill_limits = np.where(deficit[seg], satisfiable, caps - satisfiable)

    extra = _grouped_waterfill(
        fill_amount, fill_weights, fill_limits, seg, segment_sums, max_size
    )
    alloc = np.where(deficit[seg], extra, satisfiable + extra)
    unallocated = np.maximum(totals - segment_sums(alloc), 0.0)
    return alloc, unallocated


def _grouped_waterfill(
    amounts: np.ndarray,
    weights: np.ndarray,
    limits: np.ndarray,
    seg: np.ndarray,
    segment_sums,
    max_group_size: int,
) -> np.ndarray:
    """:func:`_waterfill` for many groups simultaneously.

    Replicates the scalar loop's termination rules per group: a group
    freezes when its remaining amount is spent, no child is active, or
    a round distributes (numerically) nothing.
    """
    n = len(weights)
    alloc = np.zeros(n)
    remaining = np.asarray(amounts, dtype=float).copy()
    active = (weights > 0) & (limits > _EPS)
    alive = np.ones(len(amounts), dtype=bool)
    for _ in range(max_group_size + 1):
        alive = alive & (remaining > _EPS)
        if not alive.any():
            break
        live_lane = active & alive[seg]
        alive = alive & (segment_sums(live_lane.astype(float)) > 0)
        if not alive.any():
            break
        live_lane = active & alive[seg]
        weight_sum = segment_sums(np.where(live_lane, weights, 0.0))
        safe_sum = np.where(alive, weight_sum, 1.0)
        # Same normalise-then-scale order as _waterfill (bit-exactness
        # between the scalar and grouped paths relies on it).
        share = np.where(
            live_lane, remaining[seg] * (weights / safe_sum[seg]), 0.0
        )
        new_alloc = np.minimum(alloc + share, limits)
        delta = new_alloc - alloc
        distributed = segment_sums(np.where(alive[seg], delta, 0.0))
        alloc = np.where(alive[seg], new_alloc, alloc)
        remaining = np.where(alive, remaining - distributed, remaining)
        active = active & (alloc < limits - _EPS)
        alive = alive & (distributed > _EPS)
    return alloc


def redistribute_surplus(
    allocations: Sequence[float],
    demands: Sequence[float],
    caps: Sequence[float],
    surplus: float,
) -> np.ndarray:
    """Step-3 surplus redistribution on top of existing ``allocations``.

    Adds ``surplus`` watts to the given allocations, proportional to
    demand and limited by each node's remaining cap headroom.  Returns
    the new allocation vector.
    """
    allocations = np.asarray(allocations, dtype=float)
    demands = np.asarray(demands, dtype=float)
    caps = np.asarray(caps, dtype=float)
    if surplus < 0:
        raise ValueError("surplus must be non-negative")
    headroom = np.maximum(caps - allocations, 0.0)
    extra = _waterfill(surplus, weights=demands, limits=headroom)
    return allocations + extra


def _waterfill(
    amount: float, weights: np.ndarray, limits: np.ndarray
) -> np.ndarray:
    """Distribute ``amount`` proportional to ``weights`` under ``limits``.

    Iteratively hands each unconstrained node its proportional share,
    clips at the limit, and redistributes the excess among the rest.
    Terminates in at most ``n`` rounds (each round saturates at least
    one node or distributes everything).
    """
    n = len(weights)
    alloc = np.zeros(n)
    remaining = float(amount)
    active = (weights > 0) & (limits > _EPS)
    for _ in range(n + 1):
        if remaining <= _EPS or not active.any():
            break
        weight_sum = weights[active].sum()
        share = np.zeros(n)
        # Normalise before scaling: remaining * (w / sum) keeps every
        # share <= remaining even for denormal weights, where the
        # (remaining * w) / sum order can round the product so coarsely
        # that the quotient overshoots the budget being divided.
        share[active] = remaining * (weights[active] / weight_sum)
        new_alloc = np.minimum(alloc + share, limits)
        distributed = (new_alloc - alloc).sum()
        alloc = new_alloc
        remaining -= distributed
        active = active & (alloc < limits - _EPS)
        if distributed <= _EPS:
            break
    return alloc
