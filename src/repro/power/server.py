"""Server power model.

Section IV-C argues that for a well-apportioned server running a
workload of stable character, one bottleneck resource defines "server
utilization" and power is approximately linear in it below saturation:

    P(u) = P_static + slope * u          for u in [0, 1]

Two calibrations ship with the library:

* ``SIMULATION_SERVER`` -- the Sec. V-B assumptions: maximum
  server/switch power around 450 W with a small static floor.
* ``TESTBED_SERVER`` -- re-derived from the intact arithmetic of
  Sec. V-C5 (Table I's numeric column is corrupted in the available
  text): three servers at 80/40/20 % utilization jointly draw ~580 W,
  consolidation saves ~27.5 %, and full utilization draws ~232 W, which
  pins ``P(u) = 159.5 + 72.5 u`` (u as a fraction).  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ServerPowerModel", "SIMULATION_SERVER", "TESTBED_SERVER"]


@dataclass(frozen=True)
class ServerPowerModel:
    """Linear utilization->power map for one server class.

    Attributes
    ----------
    static_power:
        Power drawn at zero utilization while the server is awake (W).
    slope:
        Additional watts at 100 % utilization over the static floor.
    standby_power:
        Power drawn in deep sleep (S3/S4); the paper treats this as
        negligible ("the power consumed is zero" with ESX DPM).
    """

    static_power: float
    slope: float
    standby_power: float = 0.0

    def __post_init__(self) -> None:
        if self.static_power < 0:
            raise ValueError(f"static_power must be >= 0, got {self.static_power}")
        if self.slope <= 0:
            raise ValueError(f"slope must be > 0, got {self.slope}")
        if self.standby_power < 0:
            raise ValueError(f"standby_power must be >= 0, got {self.standby_power}")

    @property
    def max_power(self) -> float:
        """Power at 100 % utilization (W)."""
        return self.static_power + self.slope

    def power(self, utilization):
        """Power (W) at the given utilization fraction in [0, 1]."""
        u = np.asarray(utilization, dtype=float)
        if np.any(u < 0) or np.any(u > 1 + 1e-9):
            raise ValueError("utilization must lie in [0, 1]")
        result = self.static_power + self.slope * np.minimum(u, 1.0)
        return float(result) if result.ndim == 0 else result

    def utilization(self, power):
        """Inverse map: utilization fraction drawing ``power`` watts.

        Values below the static floor map to 0 (the floor is paid as
        soon as the server is awake); values above ``max_power`` raise.
        """
        p = np.asarray(power, dtype=float)
        if np.any(p > self.max_power + 1e-9):
            raise ValueError(
                f"power exceeds max_power={self.max_power:.1f} W"
            )
        result = np.clip((p - self.static_power) / self.slope, 0.0, 1.0)
        return float(result) if result.ndim == 0 else result

    def dynamic_power(self, utilization):
        """Utilization-proportional component only (no static floor)."""
        u = np.asarray(utilization, dtype=float)
        result = self.slope * np.clip(u, 0.0, 1.0)
        return float(result) if result.ndim == 0 else result


#: Simulation calibration (Sec. V-B2): ~450 W max device power.  The
#: paper's switch-power discussion assumes the static part is "very
#: small"; we keep a 30 W floor for servers so consolidation has
#: something to save, leaving 420 W of dynamic range.
SIMULATION_SERVER = ServerPowerModel(static_power=30.0, slope=420.0)

#: Testbed calibration (Sec. V-C2/V-C5); see module docstring.
TESTBED_SERVER = ServerPowerModel(static_power=159.5, slope=72.5)
