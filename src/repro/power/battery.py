"""Battery-backed UPS buffering of the supply.

Sec. IV-C grounds the supply-side time constants in energy storage:
"Because of the presence of battery backed UPS and other energy
storage devices, any temporary deficit in power supply in a data
center is integrated out.  Hence the supply side time constants are
assumed to be larger."

:class:`Battery` models the storage; :func:`buffer_supply` runs a
supply trace through it: the UPS targets a trailing-average delivery
level, charging on surplus and discharging on deficit within its rate
and capacity limits.  Short plunges vanish (exactly the integration
the paper assumes); sustained deficits still reach the controller.
Under-engineered UPS (the paper's "leaner design") = a small battery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.supply import SupplyTrace

__all__ = [
    "Battery",
    "BatterySpec",
    "buffer_supply",
    "buffer_supply_with_plan",
    "parse_battery_spec",
]


@dataclass(frozen=True)
class BatterySpec:
    """A reusable battery description (:class:`Battery` is stateful).

    ``max_rate`` defaults to a full discharge over 8 time units --
    matching :func:`buffer_supply`'s default trailing horizon, so an
    unconfigured UPS can ride out exactly one smoothing window.
    """

    capacity: float
    max_rate: float | None = None

    def build(self, *, charge: float = -1.0) -> "Battery":
        """A fresh :class:`Battery` with this spec's limits."""
        rate = self.max_rate if self.max_rate is not None else self.capacity / 8.0
        return Battery(self.capacity, rate, charge=charge)


def parse_battery_spec(text: str) -> BatterySpec:
    """Parse the CLI battery syntax ``CAPACITY[:RATE]``.

    Raises ``ValueError`` with a usable message on malformed input;
    validation of the actual limits happens in :class:`Battery`.
    """
    capacity_part, _, rate_part = text.partition(":")
    try:
        capacity = float(capacity_part)
        max_rate = float(rate_part) if rate_part else None
    except ValueError:
        raise ValueError(
            f"battery spec must be CAPACITY[:RATE], got {text!r}"
        ) from None
    if capacity <= 0 or (max_rate is not None and max_rate <= 0):
        raise ValueError(
            f"battery capacity/rate must be positive, got {text!r}"
        )
    return BatterySpec(capacity, max_rate)


@dataclass
class Battery:
    """Energy storage with power-rate and capacity limits.

    Attributes
    ----------
    capacity:
        Usable energy (W * time-units).
    max_rate:
        Charge/discharge power limit (W).
    efficiency:
        Round-trip efficiency applied on charge (0 < eff <= 1).
    charge:
        Current stored energy; defaults to full.
    """

    capacity: float
    max_rate: float
    efficiency: float = 0.92
    charge: float = -1.0  # sentinel: full

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {self.max_rate}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.charge < 0:
            self.charge = self.capacity
        if self.charge > self.capacity:
            raise ValueError("charge cannot exceed capacity")

    @property
    def state_of_charge(self) -> float:
        return self.charge / self.capacity

    def absorb(self, surplus_power: float, dt: float) -> float:
        """Charge from a surplus; returns the power actually absorbed."""
        if surplus_power < 0:
            raise ValueError("surplus_power must be non-negative")
        room_limited = (self.capacity - self.charge) / (dt * self.efficiency)
        accepted = min(surplus_power, self.max_rate, max(room_limited, 0.0))
        self.charge = min(
            self.charge + accepted * dt * self.efficiency, self.capacity
        )
        return accepted

    def deliver(self, deficit_power: float, dt: float) -> float:
        """Discharge to cover a deficit; returns the power delivered."""
        if deficit_power < 0:
            raise ValueError("deficit_power must be non-negative")
        charge_limited = self.charge / dt
        delivered = min(deficit_power, self.max_rate, max(charge_limited, 0.0))
        self.charge = max(self.charge - delivered * dt, 0.0)
        return delivered


def buffer_supply(
    trace: SupplyTrace,
    battery: Battery,
    *,
    duration: float,
    dt: float = 1.0,
    horizon: float = 8.0,
) -> SupplyTrace:
    """Run ``trace`` through a UPS; returns the delivered supply trace.

    The UPS targets the trailing mean of the raw supply over
    ``horizon`` time units (its notion of the "real" supply level):
    above target it charges, below target it discharges.  Surplus the
    battery cannot absorb still flows through (never curtailed).

    The battery object is mutated (its final charge reflects the run).
    """
    delivered, _plan = buffer_supply_with_plan(
        trace, battery, duration=duration, dt=dt, horizon=horizon
    )
    return delivered


def buffer_supply_with_plan(
    trace: SupplyTrace,
    battery: Battery,
    *,
    duration: float,
    dt: float = 1.0,
    horizon: float = 8.0,
) -> tuple:
    """:func:`buffer_supply` that also returns the UPS *charge plan*.

    The second return value is a :class:`SupplyTrace` of the battery's
    planned state of charge (W * time-units) over the run -- what the
    predictive federation planner consults to know how much stored
    energy still backs a site's delivered supply at any future instant.
    """
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    if horizon < dt:
        raise ValueError("horizon must be at least one step")
    times = np.arange(0.0, duration, dt)
    raw = trace.series(times)
    window = max(int(round(horizon / dt)), 1)
    delivered = np.empty_like(raw)
    charges = np.empty_like(raw)
    for i, supply in enumerate(raw):
        lo = max(i - window + 1, 0)
        target = float(np.mean(raw[lo : i + 1]))
        if supply >= target:
            absorbed = battery.absorb(supply - target, dt)
            delivered[i] = supply - absorbed
        else:
            boost = battery.deliver(target - supply, dt)
            delivered[i] = supply + boost
        charges[i] = battery.charge
    return (
        SupplyTrace(tuple(times.tolist()), tuple(delivered.tolist())),
        SupplyTrace(tuple(times.tolist()), tuple(charges.tolist())),
    )
