"""Exponential demand smoothing (paper Eq. 4).

"Although it is possible to use sophisticated ARIMA type of models, a
simple exponential smoothing is often adequate":

    CP'_{l,i} = alpha * CP_{l,i} + (1 - alpha) * CP'^{old}_{l,i}
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ExponentialSmoother", "VectorSmoother", "smooth_series"]


class ExponentialSmoother:
    """Stateful exponential smoother for one demand signal.

    Parameters
    ----------
    alpha:
        Smoothing weight in (0, 1]; 1 disables smoothing.  The paper
        requires ``0 < alpha < 1``; we additionally allow 1 so the
        smoother can be turned off in ablations.
    initial:
        Starting smoothed value; if omitted, the first observation
        initialises the state (avoiding a cold-start transient).
    """

    def __init__(self, alpha: float, initial: float | None = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value: float | None = None if initial is None else float(initial)

    @property
    def value(self) -> float:
        """Current smoothed value."""
        if self._value is None:
            raise RuntimeError("smoother has not observed any value yet")
        return self._value

    @property
    def primed(self) -> bool:
        """True once at least one observation has been absorbed."""
        return self._value is not None

    def update(self, observation: float) -> float:
        """Absorb one observation and return the new smoothed value."""
        if self._value is None:
            self._value = float(observation)
        else:
            self._value = (
                self.alpha * float(observation) + (1.0 - self.alpha) * self._value
            )
        return self._value

    def reset(self, initial: float | None = None) -> None:
        self._value = None if initial is None else float(initial)


class HoltSmoother:
    """Double exponential (Holt) smoothing: level plus linear trend.

    The paper notes "it is possible to use sophisticated ARIMA type of
    models" for demand trending; Holt's method is the simplest member
    of that family that can *anticipate* a ramp instead of lagging it.
    Used by the smoothing ablation; plain Eq. 4 smoothing remains the
    default.

    Parameters
    ----------
    alpha:
        Level smoothing weight in (0, 1].
    beta:
        Trend smoothing weight in (0, 1].
    """

    def __init__(self, alpha: float, beta: float):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._level: float | None = None
        self._trend: float = 0.0

    @property
    def primed(self) -> bool:
        return self._level is not None

    @property
    def value(self) -> float:
        """Current one-step-ahead forecast (level + trend)."""
        if self._level is None:
            raise RuntimeError("smoother has not observed any value yet")
        return self._level + self._trend

    def update(self, observation: float) -> float:
        """Absorb one observation; return the new one-step forecast."""
        observation = float(observation)
        if self._level is None:
            self._level = observation
            self._trend = 0.0
            return self.value
        previous_level = self._level
        self._level = self.alpha * observation + (1.0 - self.alpha) * (
            previous_level + self._trend
        )
        self._trend = (
            self.beta * (self._level - previous_level)
            + (1.0 - self.beta) * self._trend
        )
        return self.value

    def reset(self, initial: float | None = None) -> None:
        self._level = None if initial is None else float(initial)
        self._trend = 0.0


class VectorSmoother:
    """Eq. 4 smoothing for a whole fleet of signals in one array op.

    Semantically ``n`` independent :class:`ExponentialSmoother` states
    advanced together: the update is the same IEEE-754 expression
    ``alpha * obs + (1 - alpha) * value`` applied elementwise, so each
    lane's sequence is bit-identical to a scalar smoother fed the same
    observations.  Unprimed lanes (no observation yet) are seeded by
    their first observation, exactly like the scalar cold-start rule.

    ``values`` and ``primed`` are updated strictly in place, so callers
    may alias them (the federation block in
    :class:`~repro.core.fleet.FederationFleet` rebinds them to slices
    of one shared array) without the update silently detaching the
    view.
    """

    def __init__(self, alpha: float, n: int):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.alpha = float(alpha)
        self.values = np.zeros(n)
        self.primed = np.zeros(n, dtype=bool)

    def update(self, observations: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Absorb one tick of observations; return the smoothed vector.

        ``mask`` selects which lanes update (True = update); unmasked
        lanes keep their previous value and primed state.
        """
        observations = np.asarray(observations, dtype=float)
        smoothed = (
            self.alpha * observations + (1.0 - self.alpha) * self.values
        )
        fresh = np.where(self.primed, smoothed, observations)
        if mask is None:
            self.values[...] = fresh
            self.primed[...] = True
        else:
            np.copyto(self.values, fresh, where=mask)
            self.primed |= mask
        return self.values

    def reset_lane(self, index: int, initial: float | None = None) -> None:
        """Reset one lane (``None`` returns it to the unprimed state)."""
        if initial is None:
            self.values[index] = 0.0
            self.primed[index] = False
        else:
            self.values[index] = float(initial)
            self.primed[index] = True


def smooth_series(values: Sequence[float], alpha: float) -> np.ndarray:
    """Vectorised smoothing of a whole series (first value seeds state)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = np.empty_like(values)
    out[0] = values[0]
    for i in range(1, len(values)):
        out[i] = alpha * values[i] + (1.0 - alpha) * out[i - 1]
    return out
