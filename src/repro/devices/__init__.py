"""Per-component power and thermal modelling.

The paper's conclusion calls for a "more complete design [that can]
measure power consumption and temperature of every component in the
server including memory, NIC, hard disks etc. and make fine grained
control decisions."  This subpackage implements that refinement:

* :class:`~repro.devices.model.DeviceClass` -- one component type with
  its own power share and thermal envelope;
* :class:`~repro.devices.model.DeviceSet` -- a server's components; it
  splits server power across devices, tracks per-device temperatures,
  and derives the *binding* server-level power cap (the tightest
  component constraint, translated back to server watts).

``WillowConfig(device_classes=STANDARD_DEVICES)`` makes every server's
hard cap device-aware; with ``None`` (default) the original
server-level thermal model applies unchanged.
"""

from repro.devices.model import (
    DeviceClass,
    DeviceSet,
    STANDARD_DEVICES,
)

__all__ = ["DeviceClass", "DeviceSet", "STANDARD_DEVICES"]
