"""Component-level power split and thermal envelopes.

A server's wall power is split across its component classes in fixed
proportions (the power-share vector); each component then obeys its own
Eq. 1 thermal model.  The *server-level* power cap induced by component
``d`` is ``cap_d / share_d`` -- the server power at which that component
reaches its own limit -- and the binding component is the minimum over
all of them.  With the paper's conservative window-reset reading, every
component cap is a constant of its zone ambient, so the binding
component is stable per zone (typically the disk, whose 60 C limit is
the tightest envelope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.thermal.model import (
    ThermalParams,
    power_cap,
    temperature_after,
    window_for_power_cap,
)

__all__ = ["DeviceClass", "DeviceSet", "STANDARD_DEVICES"]


@dataclass(frozen=True)
class DeviceClass:
    """One component type inside a server.

    Attributes
    ----------
    name:
        Component label ("cpu", "dimm", ...).
    power_share:
        Fraction of the server's wall power dissipated in this
        component; shares across a :class:`DeviceSet` must sum to 1.
    thermal:
        The component's own Eq. 1 envelope.  ``t_ambient`` here is the
        *offset-free* baseline; the set applies the server's zone
        ambient shift uniformly.
    rated_power:
        The component's nominal maximum dissipation (W), used to
        calibrate its cap window the same way Fig. 4 calibrates the
        server's.
    """

    name: str
    power_share: float
    thermal: ThermalParams
    rated_power: float

    def __post_init__(self) -> None:
        if not 0.0 < self.power_share <= 1.0:
            raise ValueError(
                f"power_share must be in (0, 1], got {self.power_share}"
            )
        if self.rated_power <= 0:
            raise ValueError(f"rated_power must be > 0, got {self.rated_power}")


#: A contemporary dual-socket server's component split.  Limits follow
#: component datasheet conventions: CPUs throttle at ~70 C junction
#: proxy, DIMMs at ~85 C, NICs ~75 C, and disks are the fragile ones at
#: ~60 C.  Shares sum to 1 over a 450 W envelope.
STANDARD_DEVICES: Tuple[DeviceClass, ...] = (
    DeviceClass(
        "cpu",
        power_share=0.55,
        thermal=ThermalParams(c1=0.08, c2=0.05, t_ambient=25.0, t_limit=70.0),
        rated_power=0.55 * 450.0,
    ),
    DeviceClass(
        "dimm",
        power_share=0.20,
        thermal=ThermalParams(c1=0.16, c2=0.05, t_ambient=25.0, t_limit=85.0),
        rated_power=0.20 * 450.0,
    ),
    DeviceClass(
        "nic",
        power_share=0.10,
        thermal=ThermalParams(c1=0.28, c2=0.05, t_ambient=25.0, t_limit=75.0),
        rated_power=0.10 * 450.0,
    ),
    DeviceClass(
        "disk",
        power_share=0.15,
        thermal=ThermalParams(c1=0.13, c2=0.05, t_ambient=25.0, t_limit=60.0),
        rated_power=0.15 * 450.0,
    ),
)


class DeviceSet:
    """One server's components: power split, temperatures, binding cap.

    Parameters
    ----------
    classes:
        The component classes; power shares must sum to 1.
    t_ambient:
        The server's zone ambient; applied as a shift relative to each
        class's baseline 25 C ambient (a hot aisle heats every
        component equally).
    """

    def __init__(
        self,
        classes: Sequence[DeviceClass] = STANDARD_DEVICES,
        *,
        t_ambient: float = 25.0,
    ):
        classes = tuple(classes)
        if not classes:
            raise ValueError("need at least one device class")
        total_share = sum(d.power_share for d in classes)
        if abs(total_share - 1.0) > 1e-6:
            raise ValueError(
                f"device power shares must sum to 1, got {total_share:.4f}"
            )
        names = [d.name for d in classes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device class names")
        self.classes = classes
        shift = t_ambient - 25.0
        self._params: Dict[str, ThermalParams] = {}
        self._windows: Dict[str, float] = {}
        self.temperatures: Dict[str, float] = {}
        for device in classes:
            params = device.thermal.with_ambient(device.thermal.t_ambient + shift)
            self._params[device.name] = params
            self._windows[device.name] = window_for_power_cap(
                device.thermal, device.rated_power  # calibrate at baseline
            )
            self.temperatures[device.name] = params.t_ambient
        self.violations: Dict[str, int] = {d.name: 0 for d in classes}

    # -- power split -----------------------------------------------------
    def device_power(self, server_power: float) -> Dict[str, float]:
        """Split server wall power across components."""
        if server_power < 0:
            raise ValueError("server_power must be non-negative")
        return {d.name: d.power_share * server_power for d in self.classes}

    # -- caps --------------------------------------------------------------
    def device_caps(self) -> Dict[str, float]:
        """Each component's own thermal power cap (window-reset, W)."""
        caps = {}
        for device in self.classes:
            params = self._params[device.name]
            caps[device.name] = power_cap(
                params, params.t_ambient, self._windows[device.name]
            )
        return caps

    def server_cap(self) -> float:
        """The server-level cap induced by the tightest component."""
        caps = self.device_caps()
        return min(
            caps[d.name] / d.power_share for d in self.classes
        )

    def binding_device(self) -> str:
        """Name of the component whose envelope binds the server cap."""
        caps = self.device_caps()
        return min(
            self.classes, key=lambda d: caps[d.name] / d.power_share
        ).name

    # -- temperatures ------------------------------------------------------
    def update(self, server_power: float, window: float | None = None) -> Dict[str, float]:
        """Window-reset temperature update for every component.

        Each component re-derives its temperature from its zone ambient
        at this window's power (the paper's conservative assumption,
        applied per component).
        """
        split = self.device_power(server_power)
        for device in self.classes:
            params = self._params[device.name]
            w = window if window is not None else self._windows[device.name]
            temp = temperature_after(params, params.t_ambient, split[device.name], w)
            self.temperatures[device.name] = temp
            if temp > params.t_limit + 1e-9:
                self.violations[device.name] += 1
        return dict(self.temperatures)

    def hottest_margin(self) -> Tuple[str, float]:
        """Component with least headroom: (name, limit - temperature)."""
        best_name, best_margin = None, float("inf")
        for device in self.classes:
            margin = (
                self._params[device.name].t_limit
                - self.temperatures[device.name]
            )
            if margin < best_margin:
                best_name, best_margin = device.name, margin
        assert best_name is not None
        return best_name, best_margin
