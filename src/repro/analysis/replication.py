"""Replication across seeds: means, confidence intervals, pairings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "ReplicationResult",
    "replicate",
    "mean_ci",
    "ComparisonResult",
    "compare",
]


@dataclass(frozen=True)
class ReplicationResult:
    """Scalar outcomes of one scenario over several seeds."""

    seeds: Tuple[int, ...]
    outcomes: Dict[str, np.ndarray]  # metric name -> per-seed values

    def metric(self, name: str) -> np.ndarray:
        return self.outcomes[name]

    def mean(self, name: str) -> float:
        return float(self.outcomes[name].mean())


def replicate(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> ReplicationResult:
    """Run ``run(seed)`` for every seed; collect named scalar outcomes.

    ``run`` must return the same metric keys for every seed.
    """
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")
    collected: Dict[str, list] = {}
    keys = None
    for seed in seeds:
        outcome = dict(run(seed))
        if keys is None:
            keys = set(outcome)
            if not keys:
                raise ValueError("run() returned no metrics")
        elif set(outcome) != keys:
            raise ValueError(
                f"inconsistent metric keys at seed {seed}: "
                f"{sorted(set(outcome) ^ keys)}"
            )
        for key, value in outcome.items():
            collected.setdefault(key, []).append(float(value))
    return ReplicationResult(
        seeds=seeds,
        outcomes={k: np.asarray(v) for k, v in collected.items()},
    )


def mean_ci(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Mean and normal-theory half-width for a replicated metric.

    With the small replication counts typical here (3-10 seeds) this is
    an indicative interval, not a rigorous one; z-quantiles avoid a
    scipy dependency in the hot path (scipy is available for users who
    want t-quantiles).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or len(values) < 2:
        raise ValueError("need at least two replicate values")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}.get(round(confidence, 2))
    if z is None:
        from scipy.stats import norm

        z = float(norm.ppf(0.5 + confidence / 2.0))
    half_width = z * values.std(ddof=1) / np.sqrt(len(values))
    return float(values.mean()), float(half_width)


@dataclass(frozen=True)
class ComparisonResult:
    """Paired comparison of scenario A vs scenario B over common seeds."""

    metric: str
    a_values: np.ndarray
    b_values: np.ndarray

    @property
    def differences(self) -> np.ndarray:
        return self.a_values - self.b_values

    @property
    def mean_difference(self) -> float:
        return float(self.differences.mean())

    @property
    def sign_consistency(self) -> float:
        """Fraction of seeds where A-B has the majority sign."""
        signs = np.sign(self.differences)
        nonzero = signs[signs != 0]
        if nonzero.size == 0:
            return 1.0
        majority = 1.0 if nonzero.sum() >= 0 else -1.0
        return float(np.mean(nonzero == majority))

    def a_wins_everywhere(self, *, smaller_is_better: bool = False) -> bool:
        """True iff A beats B on every seed."""
        if smaller_is_better:
            return bool(np.all(self.a_values < self.b_values))
        return bool(np.all(self.a_values > self.b_values))


def compare(
    run_a: Callable[[int], Mapping[str, float]],
    run_b: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    metric: str,
) -> ComparisonResult:
    """Paired A/B over common seeds for one metric."""
    result_a = replicate(run_a, seeds)
    result_b = replicate(run_b, seeds)
    if metric not in result_a.outcomes or metric not in result_b.outcomes:
        raise KeyError(f"metric {metric!r} missing from a scenario's outcomes")
    return ComparisonResult(
        metric=metric,
        a_values=result_a.outcomes[metric],
        b_values=result_b.outcomes[metric],
    )
