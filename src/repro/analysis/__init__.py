"""Replication and sweep analysis.

Simulation claims should hold across seeds, not on one lucky draw.
This subpackage provides:

* :func:`~repro.analysis.replication.replicate` -- run a scenario over
  several seeds and collect scalar outcomes;
* :func:`~repro.analysis.replication.mean_ci` -- mean and normal-theory
  confidence interval for a replicated outcome;
* :func:`~repro.analysis.replication.compare` -- paired comparison of
  two scenarios over common seeds (sign consistency + mean difference).
"""

from repro.analysis.replication import (
    ComparisonResult,
    ReplicationResult,
    compare,
    mean_ci,
    replicate,
)

__all__ = [
    "ComparisonResult",
    "ReplicationResult",
    "compare",
    "mean_ci",
    "replicate",
]
