"""FFDLR: First Fit Decreasing (using Largest bins), then Repack.

Friesen & Langston's variable-size bin packing scheme as described in
Sec. IV-F:

1. Normalise bin and demand sizes so the largest bin has size 1.
2. First-fit-decreasing all demands into (virtual) bins of size 1.
3. Repack the contents of each virtual bin into the smallest actual bin
   that can hold them.

Guarantee: at most (3/2) OPT + 1 bins, in O(n log n) time.  The repack
step is what makes FFDLR attractive for Willow: "repacking into smaller
bins means we try to run every server at full utilization.  The bins
(servers) that are empty can then be deactivated during the
consolidation phase."

Willow has a *finite* set of real bins (node surpluses), so after the
virtual FFD phase each virtual-bin group is matched to the smallest
unused real bin that fits; groups with no feasible bin are split and
their items re-offered individually (best-fit) before being declared
unpackable.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.binpack.items import Bin, Item, PackResult

__all__ = ["ffdlr_pack", "ffd_bin_count"]

_SLACK = 1e-9


def ffd_bin_count(sizes: Sequence[float], capacity: float) -> int:
    """Classical FFD into unlimited bins of equal ``capacity``.

    Returns the number of bins used.  Items larger than the capacity
    raise (the caller must filter such demands first).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    loads: List[float] = []
    for size in sorted(sizes, reverse=True):
        if size > capacity + _SLACK:
            raise ValueError(f"item of size {size} exceeds capacity {capacity}")
        for i, load in enumerate(loads):
            if load + size <= capacity + _SLACK:
                loads[i] = load + size
                break
        else:
            loads.append(size)
    return len(loads)


def _ffd_groups(items: List[Item], capacity: float) -> List[List[Item]]:
    """Phase 1: FFD into virtual bins of ``capacity``; returns groups."""
    groups: List[List[Item]] = []
    loads: List[float] = []
    for item in sorted(items, key=lambda it: it.size, reverse=True):
        placed = False
        for i, load in enumerate(loads):
            if load + item.size <= capacity + _SLACK:
                groups[i].append(item)
                loads[i] = load + item.size
                placed = True
                break
        if not placed:
            groups.append([item])
            loads.append(item.size)
    return groups


def ffdlr_pack(items: Sequence[Item], bins: Sequence[Bin]) -> PackResult:
    """Pack ``items`` into the finite set of variable-size ``bins``.

    Items larger than every bin, and overflow once all bins are at
    capacity, come back in ``result.unpacked``.  Input ``bins`` objects
    are mutated (contents appended) and also returned in the result.
    """
    bins = list(bins)
    result = PackResult(assignment={}, bins=bins, unpacked=[])
    keys = [item.key for item in items]
    if len(set(keys)) != len(keys):
        raise ValueError("duplicate item keys")
    # Zero-size items trivially "fit" anywhere; drop them from packing
    # but keep them out of unpacked (they demand nothing).
    pending = [item for item in items if item.size > 0]
    if not pending:
        return result
    if not bins:
        result.unpacked = list(pending)
        return result

    largest = max(b.capacity for b in bins)
    if largest <= 0:
        result.unpacked = list(pending)
        return result

    # Phase 1: FFD into virtual bins of the largest real capacity.
    # Oversized items can never fit; set them aside immediately.
    oversized = [it for it in pending if it.size > largest + _SLACK]
    packable = [it for it in pending if it.size <= largest + _SLACK]
    groups = _ffd_groups(packable, largest)

    # Phase 2 (the "LR" repack): match each group, heaviest first, to
    # the smallest unused real bin that holds it.  The scans run over
    # flat capacity/load arrays; the fit tests reuse the exact scalar
    # expressions (``total <= cap + _SLACK``, first minimum wins) so
    # decisions match the original bin-object loops bit for bit.
    caps = np.array([b.capacity for b in bins], dtype=float)
    loads = np.array([b.load for b in bins], dtype=float)
    order = np.argsort(caps, kind="stable")
    sorted_caps = caps[order]
    avail = np.ones(len(bins), dtype=bool)
    leftovers: List[Item] = list(oversized)
    for group in sorted(groups, key=lambda g: sum(i.size for i in g), reverse=True):
        total = sum(item.size for item in group)
        feasible = avail & (total <= sorted_caps + _SLACK)
        pos = int(np.argmax(feasible)) if feasible.any() else -1
        if pos >= 0:
            avail[pos] = False
            bin_index = int(order[pos])
            chosen = bins[bin_index]
            for item in group:
                chosen.add(item)
                result.assignment[item.key] = chosen.key
            loads[bin_index] = chosen.load
        else:
            leftovers.extend(group)

    # Split infeasible groups: best-fit each leftover item individually
    # into whatever residual capacity remains (used bins included).
    for item in sorted(leftovers, key=lambda it: it.size, reverse=True):
        residual = caps - loads
        feasible = np.flatnonzero(item.size <= residual + _SLACK)
        if feasible.size:
            best_index = int(feasible[np.argmin(residual[feasible])])
            best = bins[best_index]
            best.add(item)
            result.assignment[item.key] = best.key
            loads[best_index] = best.load
        else:
            result.unpacked.append(item)

    result.validate()
    return result
