"""Variable-size bin packing (paper Sec. IV-F).

Matching migrating demands to node surpluses "reduces to the classical
bin packing problem.  The surpluses available in different nodes form
the bins.  The bins are variable sized and the demands need to be
fitted in them."  The paper chooses the FFDLR scheme of Friesen &
Langston: O(n log n), guaranteed within (3/2) OPT + 1 bins, and the
final repack-into-smallest-bins step naturally empties servers for
consolidation.

* :mod:`repro.binpack.items` -- :class:`Item` / :class:`Bin` /
  :class:`PackResult` data model.
* :mod:`repro.binpack.ffdlr` -- the FFDLR packer.
* :mod:`repro.binpack.baselines` -- first-fit, FFD, best-fit-decreasing
  and worst-fit comparators.
* :mod:`repro.binpack.exact` -- exhaustive optima for small instances
  (test oracle for the FFDLR bound).
* :mod:`repro.binpack.prescreen` -- array pre-screening (masks,
  argsort orderings, cumsum take-prefixes) for the federation's
  shed/repack candidate search.
"""

from repro.binpack.items import Bin, Item, PackResult
from repro.binpack.ffdlr import ffdlr_pack, ffd_bin_count
from repro.binpack.prescreen import (
    deficient_order,
    destination_order,
    shed_takes,
    shed_vm_order,
)
from repro.binpack.baselines import (
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    worst_fit,
)
from repro.binpack.exact import feasible_exact, optimal_bin_count

__all__ = [
    "Bin",
    "Item",
    "PackResult",
    "best_fit_decreasing",
    "deficient_order",
    "destination_order",
    "feasible_exact",
    "ffd_bin_count",
    "ffdlr_pack",
    "first_fit",
    "first_fit_decreasing",
    "optimal_bin_count",
    "shed_takes",
    "shed_vm_order",
    "worst_fit",
]
