"""Array pre-screening for the Sec. IV-E shed/repack candidate search.

The federation coordinator's rebalance step must answer two questions
per transfer directive: *which VMs would the deficit site shed* (the
largest-first rule, capped at the directive) and *which servers at the
destination can absorb them* (the FFDLR bins).  Both answers start with
full-fleet scans that are pure screening -- no state changes -- so they
vectorize: masks and ``argsort``/``lexsort`` orderings over the
:class:`~repro.core.fleet.FleetState` arrays, and a ``cumsum`` prefix
rule for the per-server largest-first take.  Only the chosen moves are
then realised through the scalar FFDLR packer.

Bit-exactness: orderings use the exact scalar sort keys (no float
arithmetic), and the cumsum take-prefix is *verified* against the
scalar controller's sequential fold -- the running ``remaining`` /
``directive`` subtractions -- before it is trusted, because a prefix
sum ``raw - (d1 + d2 + ...)`` can differ from the scalar's
``((raw - d1) - d2) - ...`` in the last ulp.  Any disagreement (or an
item the scalar loop would skip as bigger than the remaining
directive, which breaks the prefix structure) falls back to the plain
loop, so decisions are always identical to the scalar coordinator's.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "deficient_order",
    "destination_order",
    "shed_vm_order",
    "shed_takes",
]


def deficient_order(
    awake: np.ndarray,
    raw: np.ndarray,
    budget: np.ndarray,
    node_ids: np.ndarray,
    eps: float,
) -> np.ndarray:
    """Rows of over-budget awake servers, worst deficit first.

    Matches ``sorted(..., key=lambda s: (s.budget - s.raw_demand,
    s.node.node_id))``: most-negative surplus first, node id breaking
    ties.
    """
    rows = np.nonzero(awake & (raw > budget + eps))[0]
    if not len(rows):
        return rows
    surplus = budget[rows] - raw[rows]
    return rows[np.lexsort((node_ids[rows], surplus))]


def destination_order(
    awake: np.ndarray,
    raw: np.ndarray,
    budget: np.ndarray,
    squeezed: np.ndarray,
    capacity: np.ndarray,
    node_ids: np.ndarray,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eligible receiver rows (node-id order) and their bin capacities.

    Same screening as the scalar ``_destination_bins``: awake, not
    deficient, not squeezed by the unidirectional rule, positive
    ``capacity``.  The caller computes ``capacity`` with the scalar's
    exact operand order (``budget - raw - p_min - wan``), since
    regrouping the subtractions can move the last ulp.
    """
    rows = np.nonzero(
        awake & ~(raw > budget + eps) & ~squeezed & (capacity > eps)
    )[0]
    if not len(rows):
        return rows, capacity[rows]
    order = rows[np.argsort(node_ids[rows])]
    return order, capacity[order]


def shed_vm_order(demands: np.ndarray, vm_ids: np.ndarray) -> np.ndarray:
    """Largest-first iteration order with vm-id tie break.

    Matches ``sorted(..., key=lambda v: (-v.current_demand, v.vm_id))``
    exactly: ``lexsort`` is stable and compares the same keys, so equal
    demands order by ascending vm id.
    """
    return np.lexsort((vm_ids, -demands))


def shed_takes(
    demands: np.ndarray,
    raw: float,
    goal: float,
    directive: float,
    eps: float,
) -> Tuple[List[int], float]:
    """Which of one server's VMs the largest-first rule takes.

    ``demands`` must already be in shed order (see
    :func:`shed_vm_order`).  Returns the taken positions (in order) and
    the directive remaining after the per-take sequential subtractions.
    Semantics are exactly the scalar loop::

        remaining = raw
        for d in demands:
            if remaining <= goal + eps or directive <= eps: break
            if d <= 0: continue
            if d > directive + eps: continue   # would overshoot
            take; remaining -= d; directive -= d

    The cumsum prefix proposes the take set in O(1) passes; the scalar
    fold then verifies every proposed decision (and the first rejected
    one) before it is trusted, falling back to the plain loop whenever
    an overshoot skip or an ulp-level disagreement shows up.
    """
    n = len(demands)
    if n == 0:
        return [], directive

    csum = np.cumsum(demands)
    before = csum - demands  # exclusive prefix: sum of takes so far
    alive = (raw - before > goal + eps) & (directive - before > eps)
    positive = demands > 0.0
    candidate = alive & positive
    oversize = candidate & (demands > (directive - before) + eps)
    fast_ok = not bool(oversize.any())

    if fast_ok:
        takes = np.nonzero(candidate)[0]
        # Zero-demand rows interleave nowhere (shed order puts them
        # last), so a valid take set is a prefix of the positive rows.
        # Verify each proposed decision -- and the first refusal --
        # with the authoritative sequential fold.
        remaining = raw
        left = directive
        confirmed: List[int] = []
        ok = True
        for k in takes.tolist():
            d = float(demands[k])
            if remaining <= goal + eps or left <= eps or d > left + eps:
                ok = False
                break
            confirmed.append(k)
            remaining -= d
            left -= d
        if ok:
            # The fold must also refuse the first positive row *after*
            # the proposed prefix for the take set to be exactly the
            # scalar's.  (Alive is monotone, so proposed takes are a
            # prefix of the positive rows.)
            start = int(takes[-1]) + 1 if len(takes) else 0
            refused = np.nonzero(positive[start:])[0]
            if len(refused) and not (remaining <= goal + eps or left <= eps):
                # The scalar loop would not *break* here: it either
                # takes this row (prefix too short) or skips it as an
                # overshoot and keeps scanning.  Both need the fold.
                ok = False
        if ok:
            return confirmed, left

    # Fallback: the plain scalar loop (overshoot skips or a last-ulp
    # disagreement between prefix sums and the sequential fold).
    remaining = raw
    left = directive
    out: List[int] = []
    for k in range(n):
        if remaining <= goal + eps or left <= eps:
            break
        d = float(demands[k])
        if d <= 0.0:
            continue
        if d > left + eps:
            continue
        out.append(k)
        remaining -= d
        left -= d
    return out, left
