"""Data model for variable-size bin packing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["Item", "Bin", "PackResult"]


@dataclass(frozen=True, slots=True)
class Item:
    """One demand to place.

    ``key`` identifies the demand (a VM id in Willow's use); ``size`` is
    its power demand in watts.  ``payload`` carries arbitrary caller
    context through the packer untouched.
    """

    key: Any
    size: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"item size must be >= 0, got {self.size}")


@dataclass(slots=True)
class Bin:
    """One surplus to fill.

    ``key`` identifies the node offering the surplus; ``capacity`` is
    the surplus in watts.  ``contents`` accumulates packed items.
    """

    key: Any
    capacity: float
    contents: List[Item] = field(default_factory=list)
    _load: float = field(init=False, repr=False, compare=False)
    _load_len: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"bin capacity must be >= 0, got {self.capacity}")
        self._load = sum(item.size for item in self.contents)
        self._load_len = len(self.contents)

    @property
    def load(self) -> float:
        """Total size currently packed into this bin."""
        # Cached incrementally by add(); recomputed only if the caller
        # mutated ``contents`` directly.  The incremental updates add
        # sizes in append order, so the cache always equals the plain
        # left-to-right sum bit for bit.
        if len(self.contents) != self._load_len:
            self._load = sum(item.size for item in self.contents)
            self._load_len = len(self.contents)
        return self._load

    @property
    def residual(self) -> float:
        """Remaining capacity."""
        return self.capacity - self.load

    def fits(self, item: Item, slack: float = 1e-9) -> bool:
        """Whether ``item`` fits in the remaining capacity."""
        return item.size <= self.residual + slack

    def add(self, item: Item) -> None:
        if not self.fits(item):
            raise ValueError(
                f"item {item.key!r} ({item.size}) does not fit in bin "
                f"{self.key!r} (residual {self.residual})"
            )
        load = self.load  # sync the cache before appending
        self.contents.append(item)
        self._load = load + item.size
        self._load_len = len(self.contents)


@dataclass
class PackResult:
    """Outcome of a packing run.

    Attributes
    ----------
    assignment:
        Maps each packed item key to the key of the bin holding it.
    bins:
        The bins, with their final contents.
    unpacked:
        Items that fit in no bin (Willow drops these demands).
    """

    assignment: Dict[Any, Any]
    bins: List[Bin]
    unpacked: List[Item]

    @property
    def bins_used(self) -> int:
        """Number of bins holding at least one item."""
        return sum(1 for b in self.bins if b.contents)

    @property
    def packed_size(self) -> float:
        """Total size successfully placed."""
        return sum(b.load for b in self.bins)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on breakage."""
        seen = set()
        for bin_ in self.bins:
            if bin_.load > bin_.capacity + 1e-6:
                raise ValueError(
                    f"bin {bin_.key!r} overfull: {bin_.load} > {bin_.capacity}"
                )
            for item in bin_.contents:
                if item.key in seen:
                    raise ValueError(f"item {item.key!r} placed twice")
                seen.add(item.key)
                if self.assignment.get(item.key) != bin_.key:
                    raise ValueError(
                        f"assignment map disagrees with bin contents for "
                        f"{item.key!r}"
                    )
        for item in self.unpacked:
            if item.key in seen:
                raise ValueError(
                    f"item {item.key!r} both packed and unpacked"
                )
        if len(self.assignment) != len(seen):
            raise ValueError("assignment map size mismatch")
