"""Exact solutions for small bin-packing instances.

These exponential-time routines exist purely as *test oracles*: the
property-based tests check FFDLR's (3/2) OPT + 1 guarantee against
:func:`optimal_bin_count`, and check that a demand is only declared
unpackable when :func:`feasible_exact` agrees no packing exists.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

__all__ = ["optimal_bin_count", "feasible_exact"]

_SLACK = 1e-9
_MAX_EXACT = 14


def optimal_bin_count(sizes: Sequence[float], capacity: float) -> int:
    """Minimum number of equal-``capacity`` bins packing all ``sizes``.

    Branch-and-bound over items in decreasing order with symmetry
    breaking (a new bin is only opened as the *last* candidate).
    Limited to 14 items -- enough for oracle duty.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    items = sorted((s for s in sizes if s > 0), reverse=True)
    if not items:
        return 0
    if len(items) > _MAX_EXACT:
        raise ValueError(f"exact solver limited to {_MAX_EXACT} items")
    if items[0] > capacity + _SLACK:
        raise ValueError(f"item of size {items[0]} exceeds capacity {capacity}")

    best = len(items)  # one bin per item always works

    def search(index: int, loads: List[float]) -> None:
        nonlocal best
        if len(loads) >= best:
            return
        if index == len(items):
            best = min(best, len(loads))
            return
        size = items[index]
        # Lower bound: remaining volume cannot beat `best`.
        remaining = sum(items[index:])
        slack_available = sum(capacity - load for load in loads)
        extra_bins_needed = 0
        if remaining > slack_available + _SLACK:
            import math

            extra_bins_needed = math.ceil(
                (remaining - slack_available) / capacity - _SLACK
            )
        if len(loads) + extra_bins_needed >= best:
            return
        tried = set()
        for i, load in enumerate(loads):
            if load + size <= capacity + _SLACK and load not in tried:
                tried.add(load)
                loads[i] = load + size
                search(index + 1, loads)
                loads[i] = load
        loads.append(size)
        search(index + 1, loads)
        loads.pop()

    search(0, [])
    return best


def feasible_exact(sizes: Sequence[float], capacities: Sequence[float]) -> bool:
    """Whether all ``sizes`` fit into the given variable ``capacities``.

    Exhaustive backtracking with memoisation on (item index, sorted
    residuals).  Limited to small instances (oracle duty only).
    """
    items = tuple(sorted((s for s in sizes if s > 0), reverse=True))
    bins = [c for c in capacities if c > 0]
    if not items:
        return True
    if not bins:
        return False
    if len(items) > _MAX_EXACT or len(bins) > _MAX_EXACT:
        raise ValueError(f"exact solver limited to {_MAX_EXACT} items/bins")
    if sum(items) > sum(bins) + _SLACK:
        return False

    # Quantise residuals for stable memo keys.
    def quantise(value: float) -> int:
        return int(round(value * 1e6))

    q_items = [quantise(s) for s in items]
    q_bins = tuple(sorted(quantise(c) for c in bins))

    @lru_cache(maxsize=None)
    def search(index: int, residuals: Tuple[int, ...]) -> bool:
        if index == len(q_items):
            return True
        size = q_items[index]
        tried = set()
        for i, residual in enumerate(residuals):
            if residual >= size and residual not in tried:
                tried.add(residual)
                nxt = tuple(sorted(residuals[:i] + (residual - size,) + residuals[i + 1:]))
                if search(index + 1, nxt):
                    return True
        return False

    return search(0, q_bins)
