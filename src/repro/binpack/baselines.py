"""Baseline packers for the FFDLR ablation (Sec. IV-F cites FF/FFD
bounds from Johnson et al.).

All baselines share the :func:`repro.binpack.ffdlr.ffdlr_pack`
signature: finite variable-size bins, items that fit nowhere are
returned unpacked.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.binpack.items import Bin, Item, PackResult

__all__ = ["first_fit", "first_fit_decreasing", "best_fit_decreasing", "worst_fit"]


def _pack_sequentially(
    items: Sequence[Item],
    bins: Sequence[Bin],
    order: Callable[[List[Item]], List[Item]],
    choose: Callable[[Item, List[Bin]], Bin | None],
) -> PackResult:
    bins = list(bins)
    result = PackResult(assignment={}, bins=bins, unpacked=[])
    keys = [item.key for item in items]
    if len(set(keys)) != len(keys):
        raise ValueError("duplicate item keys")
    for item in order([it for it in items if it.size > 0]):
        candidates = [b for b in bins if b.fits(item)]
        chosen = choose(item, candidates)
        if chosen is None:
            result.unpacked.append(item)
        else:
            chosen.add(item)
            result.assignment[item.key] = chosen.key
    result.validate()
    return result


def first_fit(items: Sequence[Item], bins: Sequence[Bin]) -> PackResult:
    """Place each item (arrival order) into the first bin it fits."""
    return _pack_sequentially(
        items,
        bins,
        order=lambda its: list(its),
        choose=lambda item, cands: cands[0] if cands else None,
    )


def first_fit_decreasing(items: Sequence[Item], bins: Sequence[Bin]) -> PackResult:
    """FFD: sort items by decreasing size, then first-fit."""
    return _pack_sequentially(
        items,
        bins,
        order=lambda its: sorted(its, key=lambda it: it.size, reverse=True),
        choose=lambda item, cands: cands[0] if cands else None,
    )


def best_fit_decreasing(items: Sequence[Item], bins: Sequence[Bin]) -> PackResult:
    """BFD: decreasing sizes, tightest-fitting bin first."""
    return _pack_sequentially(
        items,
        bins,
        order=lambda its: sorted(its, key=lambda it: it.size, reverse=True),
        choose=lambda item, cands: (
            min(cands, key=lambda b: b.residual) if cands else None
        ),
    )


def worst_fit(items: Sequence[Item], bins: Sequence[Bin]) -> PackResult:
    """Loosest-fitting bin first (spreads load; anti-consolidation)."""
    return _pack_sequentially(
        items,
        bins,
        order=lambda its: list(its),
        choose=lambda item, cands: (
            max(cands, key=lambda b: b.residual) if cands else None
        ),
    )
