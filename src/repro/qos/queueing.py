"""Query-level queueing simulation -- validates the latency model.

The :class:`~repro.qos.latency.LatencyModel` asserts the M/M/1 relation
``R/S = 1/(1 - rho)``.  Rather than take that on faith, this module
*simulates* a single server at query granularity on the DES kernel
(Poisson arrivals, exponential service, FIFO via
:class:`repro.sim.Resource`) and measures the response time directly.
The test suite checks simulation against formula across utilizations --
the substrate validating the model that the QoS layer applies to whole
servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim import Environment, RandomStreams, Resource

__all__ = ["QueueStats", "simulate_mm1"]


@dataclass(frozen=True)
class QueueStats:
    """Measured outcome of one queueing run."""

    arrivals: int
    completed: int
    mean_response: float  # mean sojourn (wait + service)
    mean_service: float
    mean_wait: float
    utilization: float  # measured busy fraction

    @property
    def response_multiple(self) -> float:
        """Mean response as a multiple of the mean service time."""
        if self.mean_service == 0:
            return float("nan")
        return self.mean_response / self.mean_service


def simulate_mm1(
    *,
    arrival_rate: float,
    service_rate: float,
    horizon: float,
    seed: int = 0,
    warmup_fraction: float = 0.2,
) -> QueueStats:
    """Simulate an M/M/1 queue on the DES kernel.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival intensity (queries per time unit); must be
        below ``service_rate`` for stability.
    service_rate:
        Exponential service intensity (queries per time unit).
    horizon:
        Simulated time.  Completions during the initial
        ``warmup_fraction`` of the horizon are discarded.
    """
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if arrival_rate >= service_rate:
        raise ValueError(
            f"unstable queue: arrival_rate {arrival_rate} >= "
            f"service_rate {service_rate}"
        )
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")

    env = Environment()
    streams = RandomStreams(seed)
    arrivals_rng = streams["mm1/arrivals"]
    service_rng = streams["mm1/service"]
    server = Resource(env, capacity=1)

    warmup_end = warmup_fraction * horizon
    responses: List[float] = []
    services: List[float] = []
    waits: List[float] = []
    counters = {"arrivals": 0, "busy": 0.0}

    def query(env, arrived_at: float, service_time: float):
        request = server.request()
        yield request
        started = env.now
        yield env.timeout(service_time)
        request.release()
        counters["busy"] += service_time
        if arrived_at >= warmup_end:
            responses.append(env.now - arrived_at)
            services.append(service_time)
            waits.append(started - arrived_at)

    def source(env):
        while True:
            yield env.timeout(arrivals_rng.exponential(1.0 / arrival_rate))
            if env.now >= horizon:
                return
            counters["arrivals"] += 1
            env.process(
                query(
                    env,
                    env.now,
                    float(service_rng.exponential(1.0 / service_rate)),
                )
            )

    env.process(source(env))
    env.run(until=horizon * 1.5)  # let in-flight queries drain

    completed = len(responses)
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
    return QueueStats(
        arrivals=counters["arrivals"],
        completed=completed,
        mean_response=mean(responses),
        mean_service=mean(services),
        mean_wait=mean(waits),
        utilization=min(counters["busy"] / horizon, 1.0),
    )
