"""Per-class QoS accounting over a finished run.

Works off the per-VM drop records the controller emits when budgets
force throttling, plus each VM's demand history, to report how much of
each service tier's demand was actually served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.metrics.collector import MetricsCollector
from repro.qos.classes import STANDARD_CLASSES, QoSClass
from repro.workload.vm import VM

__all__ = ["ClassReport", "per_class_report"]


@dataclass(frozen=True)
class ClassReport:
    """Aggregate QoS outcome for one service tier."""

    qos: QoSClass
    offered: float  # W*ticks of demand offered
    dropped: float  # W*ticks unserved

    @property
    def served(self) -> float:
        return max(self.offered - self.dropped, 0.0)

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered demand that went unserved."""
        if self.offered <= 0:
            return 0.0
        return min(self.dropped / self.offered, 1.0)


def per_class_report(
    collector: MetricsCollector,
    vms: Iterable[VM],
    *,
    scale: float = 1.0,
    offered_per_class: Dict[int, float] | None = None,
    classes: Sequence[QoSClass] = STANDARD_CLASSES,
) -> Dict[str, ClassReport]:
    """Split dropped demand by service tier.

    ``offered_per_class`` (priority -> W*ticks) should be accumulated by
    the caller during the run; when omitted it is approximated from
    each VM's mean demand times the number of recorded ticks, converted
    to watts with the placement's ``scale`` (watts per catalog unit --
    pass ``controller.placement.scale`` for generated workloads).
    """
    vms = list(vms)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    priority_of_vm = {vm.vm_id: vm.app.priority for vm in vms}

    dropped: Dict[int, float] = {qos.priority: 0.0 for qos in classes}
    unattributed = 0.0
    for drop in collector.drops:
        if drop.vm_id is None or drop.vm_id not in priority_of_vm:
            unattributed += drop.power
            continue
        priority = priority_of_vm[drop.vm_id]
        dropped[priority] = dropped.get(priority, 0.0) + drop.power

    if offered_per_class is None:
        n_ticks = len(collector.times())
        offered_per_class = {qos.priority: 0.0 for qos in classes}
        for vm in vms:
            priority = vm.app.priority
            offered_per_class[priority] = (
                offered_per_class.get(priority, 0.0)
                + vm.app.mean_power * scale * n_ticks
            )

    # Spread any unattributed drops proportionally to offered demand,
    # so totals stay conserved even for runs from older collectors.
    total_offered = sum(offered_per_class.values()) or 1.0

    reports: Dict[str, ClassReport] = {}
    for qos in classes:
        offered = offered_per_class.get(qos.priority, 0.0)
        share = offered / total_offered
        reports[qos.name] = ClassReport(
            qos=qos,
            offered=offered,
            dropped=dropped.get(qos.priority, 0.0) + unattributed * share,
        )
    return reports
