"""QoS classes, priority-aware service, and latency estimation.

The paper defers multiple QoS classes to future work ("Dealing with
multiple QoS classes is a future direction that we intend to pursue")
and motivates Willow entirely by QoS preservation.  This subpackage
implements that direction on top of the controller:

* :mod:`repro.qos.classes` -- service classes (gold/silver/bronze) and
  per-class application catalogs.
* :mod:`repro.qos.latency` -- an M/M/1-style response-time model that
  turns server utilization into latency and SLA-compliance figures.
* :mod:`repro.qos.accounting` -- per-class served/dropped accounting
  over a finished run.

The controller itself serves VM demand in priority order whenever a
budget forces throttling, so higher classes degrade last; these tools
quantify the effect.
"""

from repro.qos.classes import (
    BRONZE,
    GOLD,
    QoSClass,
    SILVER,
    STANDARD_CLASSES,
    tiered_catalog,
)
from repro.qos.latency import (
    LatencyModel,
    sla_compliance,
)
from repro.qos.accounting import ClassReport, per_class_report
from repro.qos.queueing import QueueStats, simulate_mm1

__all__ = [
    "BRONZE",
    "ClassReport",
    "GOLD",
    "LatencyModel",
    "QoSClass",
    "QueueStats",
    "simulate_mm1",
    "SILVER",
    "STANDARD_CLASSES",
    "per_class_report",
    "sla_compliance",
    "tiered_catalog",
]
