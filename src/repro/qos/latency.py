"""Response-time estimation from utilization.

The paper's workloads are transactional ("demand is driven by user
queries"), which makes the classic M/M/1 load-latency relation the
natural QoS lens:

    R(rho) = S / (1 - rho)

where ``S`` is the unloaded service time and ``rho`` the bottleneck
utilization.  Willow controls ``rho`` through budgets; this module
turns recorded utilizations into latency multiples and SLA compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.metrics.collector import MetricsCollector
from repro.qos.classes import QoSClass

__all__ = ["LatencyModel", "sla_compliance"]


@dataclass(frozen=True)
class LatencyModel:
    """M/M/1-style latency as a multiple of the unloaded service time.

    ``rho_cap`` guards the singularity: utilizations are clipped just
    below 1 so a saturated tick reports a large-but-finite latency.
    """

    rho_cap: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.rho_cap < 1.0:
            raise ValueError(f"rho_cap must be in (0, 1), got {self.rho_cap}")

    def latency_multiple(self, utilization):
        """R/S at the given utilization (scalar or array)."""
        rho = np.clip(np.asarray(utilization, dtype=float), 0.0, self.rho_cap)
        result = 1.0 / (1.0 - rho)
        return float(result) if result.ndim == 0 else result

    def max_utilization_for(self, qos: QoSClass) -> float:
        """The utilization at which a class's SLA is exactly met.

        Inverts R/S = 1/(1-rho) <= latency_sla.
        """
        return 1.0 - 1.0 / qos.latency_sla


def sla_compliance(
    collector: MetricsCollector,
    qos: QoSClass,
    model: LatencyModel | None = None,
) -> Dict[int, float]:
    """Fraction of awake ticks each server met the class's SLA.

    A tick complies when the server's estimated latency multiple stays
    within ``qos.latency_sla``.  Sleeping ticks are excluded (the
    server hosts nothing then).
    """
    model = model or LatencyModel()
    threshold = model.max_utilization_for(qos)
    result: Dict[int, float] = {}
    for server_id in collector.server_ids():
        utils = []
        for sample in collector.server_samples:
            if sample.server_id == server_id and not sample.asleep:
                utils.append(sample.utilization)
        if not utils:
            result[server_id] = 1.0
            continue
        utils = np.asarray(utils)
        result[server_id] = float(np.mean(utils <= threshold + 1e-12))
    return result
