"""Service classes.

A :class:`QoSClass` bundles a scheduling priority (lower = served
first when budgets force throttling) with a response-time SLA used by
:mod:`repro.qos.latency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.workload.applications import AppType

__all__ = [
    "QoSClass",
    "GOLD",
    "SILVER",
    "BRONZE",
    "STANDARD_CLASSES",
    "tiered_catalog",
]


@dataclass(frozen=True)
class QoSClass:
    """One service tier.

    Attributes
    ----------
    name:
        Tier label.
    priority:
        Scheduling priority; lower values are served first.
    latency_sla:
        Maximum acceptable response time, as a multiple of the
        zero-load service time (e.g. 2.0 = "at most twice the
        unloaded latency").
    """

    name: str
    priority: int
    latency_sla: float

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if self.latency_sla <= 1.0:
            raise ValueError(
                f"latency_sla must exceed 1.0 (the unloaded latency), "
                f"got {self.latency_sla}"
            )


GOLD = QoSClass("gold", priority=0, latency_sla=2.0)
SILVER = QoSClass("silver", priority=1, latency_sla=4.0)
BRONZE = QoSClass("bronze", priority=2, latency_sla=10.0)

STANDARD_CLASSES: Tuple[QoSClass, ...] = (GOLD, SILVER, BRONZE)


def tiered_catalog(
    base_apps: Sequence[AppType],
    classes: Sequence[QoSClass] = STANDARD_CLASSES,
) -> List[AppType]:
    """Cross a base application catalog with service tiers.

    Each base app is replicated once per class with the class's
    priority attached (``"app-5/gold"`` etc.), so random placement
    spreads tiers across the fleet.
    """
    if not base_apps:
        raise ValueError("need at least one base application")
    if not classes:
        raise ValueError("need at least one QoS class")
    catalog: List[AppType] = []
    for app in base_apps:
        for qos in classes:
            catalog.append(
                AppType(
                    name=f"{app.name}/{qos.name}",
                    mean_power=app.mean_power,
                    priority=qos.priority,
                )
            )
    return catalog


def class_of(app: AppType, classes: Sequence[QoSClass] = STANDARD_CLASSES) -> QoSClass:
    """The service tier an application belongs to (by priority)."""
    for qos in classes:
        if qos.priority == app.priority:
            return qos
    raise KeyError(f"no QoS class with priority {app.priority}")
