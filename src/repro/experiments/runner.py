"""CLI: regenerate every paper figure/table.

Usage::

    python -m repro.experiments.runner           # list experiments
    python -m repro.experiments.runner all       # run everything
    python -m repro.experiments.runner fig05 fig06
    python -m repro.experiments.runner all --workers 8   # process pool
    python -m repro.experiments.runner all --no-cache    # force recompute
    python -m repro.experiments.runner resilience --trace traces/

Sweep results persist across invocations in the on-disk cache (see
:mod:`repro.experiments.cache`); ``--no-cache`` disables both reading
and writing it for this run.  ``--workers N`` fans the selected
experiments out over a process pool; output order is unchanged.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    extensions,
    imbalance,
    fig_degraded,
    fig_federation,
    fig_gym,
    fig_predictive,
    fig_resilience,
    fig04_thermal,
    fig05_power,
    fig06_temperature,
    fig07_consolidation,
    fig09_migration_mix,
    fig10_traffic,
    fig11_switch_power,
    fig12_switch_cost,
    fig14_calibration,
    fig15_16_deficit,
    fig17_18_temps,
    fig19_table3,
    properties,
    table1_power_model,
    table2_app_profiles,
)

__all__ = ["REGISTRY", "main"]

REGISTRY: Dict[str, Callable] = {
    "fig04": fig04_thermal.run,
    "fig05": fig05_power.run,
    "fig06": fig06_temperature.run,
    "fig07": fig07_consolidation.run,
    "fig09": fig09_migration_mix.run,
    "fig10": fig10_traffic.run,
    "fig11": fig11_switch_power.run,
    "fig12": fig12_switch_cost.run,
    "table1": table1_power_model.run,
    "fig14": fig14_calibration.run,
    "fig15_16": fig15_16_deficit.run,
    "fig17_18": fig17_18_temps.run,
    "fig19_table3": fig19_table3.run,
    "table2": table2_app_profiles.run,
    "properties": properties.run,
    "extensions": extensions.run,
    "imbalance": imbalance.run,
    "degraded": fig_degraded.run,
    "resilience": fig_resilience.run,
    "federation": fig_federation.run,
    "predictive": fig_predictive.run,
    "forecast-error": fig_predictive.run_forecast_sweep,
    "gym": fig_gym.run,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate paper figures/tables.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help="experiment names, or 'all' (empty: list and exit)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run experiments over N processes (default 1: serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk sweep cache",
    )
    parser.add_argument(
        "--trace", type=str, default=None, metavar="DIR",
        help="record a structured tick trace per experiment to "
             "DIR/<name>.jsonl (serial only; implies --no-cache so "
             "every run actually executes)",
    )
    parser.add_argument(
        "--battery", type=str, default=None, metavar="CAPACITY[:RATE]",
        help="UPS battery for experiments that model energy storage "
             "(federation): capacity in W*ticks, optional charge/"
             "discharge rate in W (default: capacity/8)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv)
    )
    if not args.names:
        print("available experiments:")
        for name in REGISTRY:
            print(f"  {name}")
        print("run with: python -m repro.experiments.runner all")
        return 0
    names = list(REGISTRY) if args.names == ["all"] else args.names
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.trace and args.workers > 1:
        print("--trace requires --workers 1 (serial run)", file=sys.stderr)
        return 2
    if args.battery is not None and args.workers > 1:
        # The override is process-local state; worker processes would
        # silently run without it.
        print("--battery requires --workers 1 (serial run)", file=sys.stderr)
        return 2

    from repro.experiments import cache
    from repro.experiments.common import set_battery_override

    battery_spec = None
    if args.battery is not None:
        from repro.power.battery import parse_battery_spec

        try:
            battery_spec = parse_battery_spec(args.battery)
        except ValueError as error:
            print(f"--battery: {error}", file=sys.stderr)
            return 2

    # Tracing implies no cache: a cache hit skips the simulation, so
    # nothing would be recorded and the trace would silently be empty.
    cache.set_enabled(False if (args.no_cache or args.trace) else True)
    set_battery_override(battery_spec)
    try:
        if args.workers > 1:
            from repro.experiments.parallel import run_experiments_parallel

            for _, table in run_experiments_parallel(names, args.workers):
                print(table)
                print()
        elif args.trace:
            from pathlib import Path

            from repro.trace import tracing

            trace_dir = Path(args.trace)
            for name in names:
                trace_path = trace_dir / f"{name}.jsonl"
                # Every controller constructed inside the block adopts
                # the ambient tracer, so experiments need no plumbing.
                with tracing(trace_path):
                    result = REGISTRY[name]()
                print(result.format())
                print(f"wrote trace to {trace_path}")
                print()
        else:
            for name in names:
                result = REGISTRY[name]()
                print(result.format())
                print()
    finally:
        cache.set_enabled(None)
        set_battery_override(None)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
