"""Predictive federation: receding-horizon MPC vs the myopic waterfall.

Beyond the paper.  The federation sweep (``fig_federation``) showed
cross-site shifting recovering the overnight solar shortfall; its
``proportional`` policy, however, is myopic -- it happily parks load on
a site whose own sunset is minutes away, then pays the WAN cost again
to move it back.  This experiment measures what lookahead buys: the
``predictive`` policy (:mod:`repro.federation.predictive`) reads each
site's K-step supply forecast and battery plan, screens donors over the
whole window, and pre-ships load ahead of predicted crunches only when
the discounted avoided-drop energy beats the WAN break-even.

Cells sweep the horizon (proportional == horizon 0 is the baseline row)
with and without cooling actuation (the planner raising a crunch site's
supply-air setpoint, with the modeled cooling-plant overhead charged
against *every* site's budget so the comparison stays fair).

Headline expectations, asserted in
``tests/test_federation_predictive.py``:

* at every horizon >= 2, predictive dropped demand is strictly below
  proportional's, at equal-or-lower total WAN migration energy;
* zero thermal violations in every cell -- including the cooling cells,
  where setpoint actuation deliberately spends thermal headroom.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import WillowConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.fig_federation import build_specs
from repro.federation import CoolingControl, run_federation
from repro.metrics.federation import summarize_federation

__all__ = ["run", "run_forecast_sweep", "main", "smoke"]

HORIZONS = (2, 4)
BATTERY_CAPACITY = 1500.0
OUTSIDE_TEMP = 30.0

#: Gaussian forecast error levels (W) for the degradation sweep -- up
#: to roughly the solar base level, where the forecast is mostly noise.
FORECAST_SIGMAS = (0.0, 200.0, 600.0, 1500.0)


def _thermal_violations(coordinator) -> int:
    return sum(
        server.thermal.violations
        for site in coordinator.sites
        for server in site.controller.servers.values()
    )


def _wan_energy(coordinator) -> float:
    """Total WAN migration energy (W*ticks) a run paid, both ends."""
    total = 0.0
    for migration in coordinator.cross_migrations:
        site = coordinator.site(migration.dst_site)
        _, ticks = coordinator._wan_cost(site)
        total += 2.0 * migration.wan_cost_power * ticks * coordinator.delta_d
    return total


def _cell(
    *,
    n_sites: int,
    n_ticks: int,
    seed: int,
    target_utilization: float,
    battery_capacity: float,
    policy: str,
    horizon: int,
    cooling: Optional[CoolingControl],
) -> dict:
    coordinator = run_federation(
        build_specs(
            n_sites,
            battery_capacity=battery_capacity,
            target_utilization=target_utilization,
            seed=seed,
        ),
        n_ticks=n_ticks,
        policy=policy,
        horizon=horizon,
        cooling=cooling,
    )
    summary = summarize_federation(coordinator)
    return {
        "dropped": summary.total_dropped_power,
        "moves": summary.cross_migrations,
        "preemptive_moves": sum(
            1
            for _tick, transfers in coordinator.transfer_log
            for t in transfers
            if t.preemptive
        ),
        "wan_energy": _wan_energy(coordinator),
        "setpoint_changes": sum(
            len(s) for _tick, s in coordinator.setpoint_log
        ),
        "worst_temp": summary.peak_temperature,
        "violations": _thermal_violations(coordinator),
    }


def run(
    horizons: Sequence[int] = HORIZONS,
    n_sites: int = 3,
    n_ticks: int = 192,
    seed: int = 1,
    target_utilization: float = 0.35,
    battery_capacity: float = BATTERY_CAPACITY,
    with_cooling: bool = True,
) -> ExperimentResult:
    config = WillowConfig()
    t_limit = config.thermal.t_limit

    cooling_modes: list = [None]
    if with_cooling:
        cooling_modes.append(CoolingControl(outside_temp=OUTSIDE_TEMP))

    headers = [
        "policy",
        "cooling",
        "dropped (W*ticks)",
        "vs proportional",
        "moves (pre-emptive)",
        "WAN energy",
        "setpoint moves",
        "worst T (C)",
        "T violations",
    ]
    rows = []
    sweep = {}
    kwargs = dict(
        n_sites=n_sites,
        n_ticks=n_ticks,
        seed=seed,
        target_utilization=target_utilization,
        battery_capacity=battery_capacity,
    )
    for cooling in cooling_modes:
        mode = "on" if cooling is not None else "off"
        baseline = _cell(
            policy="proportional", horizon=0, cooling=cooling, **kwargs
        )
        sweep[("proportional", 0, mode)] = baseline
        rows.append(
            [
                "proportional",
                mode,
                f"{baseline['dropped']:.0f}",
                "--",
                f"{baseline['moves']} (0)",
                f"{baseline['wan_energy']:.0f}",
                baseline["setpoint_changes"],
                f"{baseline['worst_temp']:.1f}",
                baseline["violations"],
            ]
        )
        for horizon in horizons:
            cell = _cell(
                policy="predictive",
                horizon=horizon,
                cooling=cooling,
                **kwargs,
            )
            cell["baseline_dropped"] = baseline["dropped"]
            cell["baseline_wan_energy"] = baseline["wan_energy"]
            sweep[("predictive", horizon, mode)] = cell
            reduction = (
                (baseline["dropped"] - cell["dropped"]) / baseline["dropped"]
                if baseline["dropped"] > 0
                else 0.0
            )
            rows.append(
                [
                    f"predictive K={horizon}",
                    mode,
                    f"{cell['dropped']:.0f}",
                    f"-{reduction:.1%}",
                    f"{cell['moves']} ({cell['preemptive_moves']})",
                    f"{cell['wan_energy']:.0f}",
                    cell["setpoint_changes"],
                    f"{cell['worst_temp']:.1f}",
                    cell["violations"],
                ]
            )

    return ExperimentResult(
        name=(
            "Predictive federation (beyond the paper): receding-horizon "
            "MPC with cooling actuation"
        ),
        headers=headers,
        rows=rows,
        data={
            "sweep": sweep,
            "t_limit": t_limit,
            "horizons": tuple(horizons),
            "n_sites": n_sites,
        },
        notes=(
            f"{n_sites} sites, anti-correlated solar, battery "
            f"{battery_capacity:.0f} W*ticks per site (starts empty).  "
            "Predictive must strictly reduce dropped demand vs "
            "proportional at equal-or-lower WAN energy, with "
            f"T <= {t_limit:.0f} C everywhere."
        ),
    )


def run_forecast_sweep(
    sigmas: Sequence[float] = FORECAST_SIGMAS,
    horizon: int = 4,
    n_sites: int = 3,
    n_ticks: int = 192,
    seed: int = 1,
    target_utilization: float = 0.35,
    battery_capacity: float = BATTERY_CAPACITY,
) -> ExperimentResult:
    """How the MPC win degrades with forecast error (ROADMAP item).

    Re-runs the headline predictive-vs-proportional comparison with the
    oracle forecast replaced by ``noisy-oracle:SIGMA`` models
    (:mod:`repro.federation.forecasts`) of increasing error, plus the
    naive ``persistence`` forecaster as the no-model floor.  The
    interesting quantity is the fraction of the perfect-forecast drop
    reduction each error level retains.
    """
    def cell(policy, horizon_, forecast):
        coordinator = run_federation(
            build_specs(
                n_sites,
                battery_capacity=battery_capacity,
                target_utilization=target_utilization,
                seed=seed,
            ),
            n_ticks=n_ticks,
            policy=policy,
            horizon=horizon_,
            forecast=forecast,
        )
        summary = summarize_federation(coordinator)
        return {
            "dropped": summary.total_dropped_power,
            "moves": summary.cross_migrations,
            "wan_energy": _wan_energy(coordinator),
            "violations": _thermal_violations(coordinator),
        }

    baseline = cell("proportional", 0, "oracle")
    oracle = cell("predictive", horizon, "oracle")
    full_win = baseline["dropped"] - oracle["dropped"]

    headers = [
        "forecast",
        "dropped (W*ticks)",
        "vs proportional",
        "win retained",
        "moves",
        "WAN energy",
        "T violations",
    ]
    rows = [
        [
            "proportional (no forecast)",
            f"{baseline['dropped']:.0f}",
            "--",
            "--",
            baseline["moves"],
            f"{baseline['wan_energy']:.0f}",
            baseline["violations"],
        ]
    ]
    sweep = {("proportional", None): baseline}

    def add_row(label, key, result):
        sweep[key] = result
        win = baseline["dropped"] - result["dropped"]
        retained = win / full_win if full_win > 0 else 0.0
        reduction = (
            (baseline["dropped"] - result["dropped"]) / baseline["dropped"]
            if baseline["dropped"] > 0
            else 0.0
        )
        rows.append(
            [
                label,
                f"{result['dropped']:.0f}",
                f"-{reduction:.1%}",
                f"{retained:.0%}",
                result["moves"],
                f"{result['wan_energy']:.0f}",
                result["violations"],
            ]
        )

    for sigma in sigmas:
        forecast = "oracle" if sigma == 0 else f"noisy-oracle:{sigma:g}"
        result = oracle if sigma == 0 else cell("predictive", horizon, forecast)
        add_row(
            f"K={horizon} {forecast}", ("noisy-oracle", float(sigma)), result
        )
    add_row(
        f"K={horizon} persistence",
        ("persistence", None),
        cell("predictive", horizon, "persistence"),
    )

    return ExperimentResult(
        name=(
            "Forecast-error degradation (beyond the paper): the MPC win "
            "under noisy supply forecasts"
        ),
        headers=headers,
        rows=rows,
        data={
            "sweep": sweep,
            "full_win": full_win,
            "horizon": horizon,
            "n_sites": n_sites,
        },
        notes=(
            f"{n_sites} sites, anti-correlated solar, battery "
            f"{battery_capacity:.0f} W*ticks per site.  'win retained' is "
            "each forecast's share of the perfect-forecast drop "
            "reduction; persistence is the no-model floor."
        ),
    )


def smoke() -> None:
    """Tiny predictive run for CI: must beat proportional, stay cool.

    Exercised by ``make mpc-smoke``; raises ``AssertionError`` on any
    regression of the experiment's headline claims.
    """
    result = run(horizons=(4,), n_ticks=96, with_cooling=True)
    sweep = result.data["sweep"]
    for mode in ("off", "on"):
        baseline = sweep[("proportional", 0, mode)]
        cell = sweep[("predictive", 4, mode)]
        assert cell["dropped"] < baseline["dropped"], (
            f"predictive K=4 (cooling {mode}) dropped "
            f"{cell['dropped']:.0f} >= proportional "
            f"{baseline['dropped']:.0f}"
        )
        assert cell["wan_energy"] <= baseline["wan_energy"], (
            f"predictive K=4 (cooling {mode}) WAN energy "
            f"{cell['wan_energy']:.0f} > proportional "
            f"{baseline['wan_energy']:.0f}"
        )
    violations = sum(cell["violations"] for cell in sweep.values())
    assert violations == 0, f"{violations} thermal violations"
    print(result.format())
    print("mpc smoke: OK (predictive beats proportional, 0 violations)")


def main() -> None:
    result = run()
    print(result.format())
    cells = [
        (key, cell)
        for key, cell in result.data["sweep"].items()
        if key[0] == "predictive"
    ]
    strict = all(
        cell["dropped"] < cell["baseline_dropped"]
        and cell["wan_energy"] <= cell["baseline_wan_energy"]
        for _key, cell in cells
    )
    violations = sum(cell["violations"] for cell in result.data["sweep"].values())
    print(
        f"predictive benefit: {'OK' if strict else 'ABSENT'} "
        f"({sum(c['dropped'] < c['baseline_dropped'] for _k, c in cells)}"
        f"/{len(cells)} cells strictly better, {violations} thermal "
        "violations)"
    )


if __name__ == "__main__":
    main()
