"""On-disk result cache for the paper's utilization sweep.

``paper_sweep.run_sweep`` is memoised per-process with ``lru_cache``,
which does nothing for the common workflow of regenerating figures one
CLI invocation at a time: every process re-runs the same 9-point sweep.
This module adds a *cross-run* layer keyed by a hash of the full sweep
configuration, storing each result as an ``.npz`` under the cache
directory.

Keying and versioning
---------------------
The key is a SHA-256 over ``(CACHE_VERSION, utilizations, n_ticks,
seed, consolidation)``.  ``CACHE_VERSION`` must be bumped whenever the
simulation's numerical behaviour changes, so stale entries can never be
mistaken for current results.  Corrupted or unreadable entries are
treated as misses.

Enablement
----------
The disk layer is *opt-in*: it stays off for test runs (which must do
real work and must not be poisoned by results from an older build) and
is switched on by the experiment CLIs.  Precedence:

1. :func:`set_enabled` (``True``/``False``) -- explicit program choice,
   e.g. the runner's ``--no-cache`` flag;
2. ``WILLOW_NO_CACHE=1`` in the environment -- always off;
3. ``WILLOW_CACHE_DIR=...`` in the environment -- on, at that path;
4. otherwise off.

The default cache directory is ``.willow_cache`` under the current
working directory; override with ``WILLOW_CACHE_DIR``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "CACHE_VERSION",
    "cache_dir",
    "cache_enabled",
    "set_enabled",
    "sweep_key",
    "load_sweep",
    "store_sweep",
    "clear_disk_cache",
]

#: Bump when run_willow / SweepPoint semantics change.
CACHE_VERSION = 1

_ENV_DIR = "WILLOW_CACHE_DIR"
_ENV_OFF = "WILLOW_NO_CACHE"

#: tri-state override: None = follow the environment.
_enabled_override: Optional[bool] = None


def set_enabled(enabled: Optional[bool]) -> None:
    """Force the disk cache on/off (``None`` restores env-driven mode)."""
    global _enabled_override
    _enabled_override = enabled


def cache_enabled() -> bool:
    if _enabled_override is not None:
        return _enabled_override
    if os.environ.get(_ENV_OFF):
        return False
    return bool(os.environ.get(_ENV_DIR))


def cache_dir() -> Path:
    return Path(os.environ.get(_ENV_DIR) or ".willow_cache")


def sweep_key(
    utilizations: Tuple[float, ...],
    n_ticks: int,
    seed: int,
    consolidation: bool,
) -> str:
    """Deterministic content key for one sweep configuration."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "utilizations": [float(u) for u in utilizations],
            "n_ticks": int(n_ticks),
            "seed": int(seed),
            "consolidation": bool(consolidation),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _entry_path(key: str) -> Path:
    return cache_dir() / f"sweep-{key}.npz"


def store_sweep(key: str, points) -> Optional[Path]:
    """Write a tuple of SweepPoints as one ``.npz``; atomic via rename.

    Returns the written path, or ``None`` when the cache is disabled or
    the points are not representable (e.g. ragged switch-id sets --
    cannot happen with a fixed topology, but never worth crashing an
    experiment over).
    """
    if not cache_enabled() or not points:
        return None
    try:
        arrays = _points_to_arrays(points)
    except ValueError:
        return None
    path = _entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    return path


def load_sweep(key: str):
    """Return the cached tuple of SweepPoints, or ``None`` on a miss.

    Any read/parse failure (truncated file, schema drift) is a miss;
    the caller recomputes and overwrites the entry.
    """
    if not cache_enabled():
        return None
    path = _entry_path(key)
    if not path.is_file():
        return None
    try:
        with np.load(path) as data:
            return _points_from_arrays(data)
    except Exception:
        return None


def clear_disk_cache() -> int:
    """Delete every sweep entry; returns the number of files removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.glob("sweep-*.npz"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


# ------------------------------------------------------- (de)serialising

_VECTOR_FIELDS = (
    "mean_power",
    "mean_temperature",
    "asleep_fraction",
    "energy",
)
_SCALAR_FIELDS = (
    "utilization",
    "migration_traffic_fraction",
    "dropped_power",
)
_COUNT_FIELDS = ("demand_migrations", "consolidation_migrations")
_DICT_FIELDS = ("switch_power_l1", "switch_migration_cost_l1")


def _points_to_arrays(points) -> dict:
    arrays: dict = {"n_points": np.array(len(points))}
    for name in _VECTOR_FIELDS:
        arrays[name] = np.array([getattr(p, name) for p in points], dtype=float)
    for name in _SCALAR_FIELDS:
        arrays[name] = np.array([getattr(p, name) for p in points], dtype=float)
    for name in _COUNT_FIELDS:
        arrays[name] = np.array(
            [getattr(p, name) for p in points], dtype=np.int64
        )
    for name in _DICT_FIELDS:
        keys = [sorted(getattr(p, name)) for p in points]
        if any(k != keys[0] for k in keys[1:]):
            raise ValueError(f"ragged key sets for {name}")
        arrays[f"{name}__keys"] = np.array(keys[0], dtype=np.int64)
        arrays[name] = np.array(
            [[getattr(p, name)[k] for k in keys[0]] for p in points],
            dtype=float,
        )
    return arrays


def _points_from_arrays(data):
    from repro.experiments.paper_sweep import SweepPoint

    n_points = int(data["n_points"])
    points = []
    for i in range(n_points):
        kwargs = {"utilization": float(data["utilization"][i])}
        for name in _VECTOR_FIELDS:
            kwargs[name] = tuple(float(v) for v in data[name][i])
        for name in _SCALAR_FIELDS[1:]:
            kwargs[name] = float(data[name][i])
        for name in _COUNT_FIELDS:
            kwargs[name] = int(data[name][i])
        for name in _DICT_FIELDS:
            keys = data[f"{name}__keys"]
            kwargs[name] = {
                int(k): float(v) for k, v in zip(keys, data[name][i])
            }
        points.append(SweepPoint(**kwargs))
    return tuple(points)
