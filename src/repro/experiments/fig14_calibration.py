"""Fig. 14 -- experimental estimation of the thermal constants.

The paper drives a CPU-bound load on a testbed server, records power
and temperature (2 Hz Extech analyzer), and estimates ``c1 = 0.2,
c2 = 0.008``.  We synthesise the heating run from the same ground-truth
constants (the hardware substitution is documented in DESIGN.md),
re-fit them by least squares, and regenerate the figure's
"maximum accommodatable power vs (T - Ta)" line.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.power.server import TESTBED_SERVER
from repro.thermal.calibration import fit_constants, generate_heating_trace
from repro.thermal.model import ThermalParams, power_cap, window_for_power_cap

__all__ = ["run", "main", "TRUE_C1", "TRUE_C2"]

TRUE_C1 = 0.2
TRUE_C2 = 0.008


def run(
    n_samples: int = 400,
    dt: float = 0.5,
    noise_std: float = 0.05,
    seed: int = 14,
) -> ExperimentResult:
    params = ThermalParams(
        c1=TRUE_C1, c2=TRUE_C2, t_ambient=25.0, t_limit=70.0
    )
    rng = np.random.default_rng(seed)
    # Step the CPU load through the Table I utilization points, as the
    # paper's baseline runs do.
    levels = TESTBED_SERVER.power(
        np.repeat([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], n_samples // 6)
    )
    powers, temps = generate_heating_trace(
        params, levels, dt, noise_std=noise_std, rng=rng
    )
    fit = fit_constants(powers, temps, dt, t_ambient=25.0)

    # Fig. 14's line: max accommodatable power vs temperature headroom.
    window = window_for_power_cap(params, TESTBED_SERVER.max_power)
    headrooms = np.arange(0.0, 46.0, 5.0)  # T_limit - T as (Ta - T) grows
    caps = power_cap(params, params.t_limit - headrooms, window)

    headers = ["T_limit - T (C)", "max accommodatable power (W)"]
    rows = [[h, c] for h, c in zip(headrooms, caps)]
    return ExperimentResult(
        name="Fig. 14 -- experimental estimation of c1 and c2",
        headers=headers,
        rows=rows,
        data={
            "true_c1": TRUE_C1,
            "true_c2": TRUE_C2,
            "fit_c1": fit.c1,
            "fit_c2": fit.c2,
            "residual": fit.residual,
            "headrooms": headrooms,
            "caps": np.asarray(caps),
        },
        notes=(
            f"least-squares fit over synthetic heating run: c1={fit.c1:.4f} "
            f"(true {TRUE_C1}), c2={fit.c2:.5f} (true {TRUE_C2}); cap is "
            "linear in temperature headroom as in the paper's figure"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
