"""Fig. 4 -- setting up the simulation thermal constants.

The paper sweeps candidate ``(c1, c2)`` pairs and plots the power
surplus a node presents as a function of its temperature, picking
``c1=0.08, c2=0.05`` because:

* a node idling at ``Ta=25 C`` presents ~450 W (the max device power);
* a node at 70 C in a 45 C ambient presents almost nothing.

We regenerate those curves with Eq. 3 over the calibrated window.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.thermal.calibration import power_cap_curve
from repro.thermal.model import ThermalParams, window_for_power_cap

__all__ = ["run", "main"]

#: Candidate constant pairs swept in the figure (the paper shows a few
#: nearby candidates; the chosen pair is listed first).
CANDIDATES: Tuple[Tuple[float, float], ...] = (
    (0.08, 0.05),
    (0.10, 0.05),
    (0.08, 0.04),
    (0.12, 0.06),
)

MAX_POWER = 450.0


def run(
    candidates: Sequence[Tuple[float, float]] = CANDIDATES,
    temperatures: Sequence[float] | None = None,
) -> ExperimentResult:
    """Power-cap-vs-temperature curves for each candidate pair."""
    if temperatures is None:
        temperatures = np.arange(25.0, 71.0, 5.0)
    temperatures = np.asarray(temperatures, dtype=float)

    headers = ["T (C)"] + [f"c1={c1},c2={c2}" for c1, c2 in candidates]
    curves = {}
    for c1, c2 in candidates:
        params = ThermalParams(c1=c1, c2=c2, t_ambient=25.0, t_limit=70.0)
        window = window_for_power_cap(params, MAX_POWER)
        curves[(c1, c2)] = power_cap_curve(params, temperatures, window)

    rows = []
    for i, temp in enumerate(temperatures):
        rows.append([temp] + [curves[pair][i] for pair in candidates])

    # The two headline checkpoints the paper reads off the figure.
    chosen = ThermalParams(c1=0.08, c2=0.05, t_ambient=25.0, t_limit=70.0)
    window = window_for_power_cap(chosen, MAX_POWER)
    cap_idle_cool = float(power_cap_curve(chosen, [25.0], window)[0])
    hot = chosen.with_ambient(45.0)
    cap_at_limit_hot = float(power_cap_curve(hot, [70.0], window)[0])

    return ExperimentResult(
        name="Fig. 4 -- thermal constant selection",
        headers=headers,
        rows=rows,
        data={
            "temperatures": temperatures,
            "curves": {f"{c1},{c2}": curves[(c1, c2)] for c1, c2 in candidates},
            "cap_idle_cool": cap_idle_cool,
            "cap_at_limit_hot": cap_at_limit_hot,
            "window": window,
        },
        notes=(
            f"chosen pair c1=0.08,c2=0.05: idle/cool cap = "
            f"{cap_idle_cool:.1f} W (paper: ~450), cap at 70C in 45C "
            f"ambient = {cap_at_limit_hot:.1f} W (paper: ~0)"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
