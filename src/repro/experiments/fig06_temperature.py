"""Fig. 6 -- average server temperature vs utilization.

"At low utilization levels the servers in the hot zones are maintained
at a temperature close to the ambient temperature of 40C.  The
variation in temperature of the servers in the hot and cold zones
gradually reduces with the increase in utilization and the temperature
of the servers is almost uniform when the utilization is very high."
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.common import ExperimentResult, PAPER_UTILIZATIONS
from repro.experiments.paper_sweep import run_sweep

__all__ = ["run", "main"]


def run(
    utilizations: Tuple[float, ...] = PAPER_UTILIZATIONS,
    n_ticks: int = 120,
    seed: int = 11,
) -> ExperimentResult:
    points = run_sweep(tuple(utilizations), n_ticks=n_ticks, seed=seed)
    headers = ["U (%)", "cold mean (C)", "hot mean (C)", "gap (C)"]
    rows = []
    for point in points:
        gap = point.hot_mean_temperature - point.cold_mean_temperature
        rows.append(
            [
                point.utilization * 100,
                point.cold_mean_temperature,
                point.hot_mean_temperature,
                gap,
            ]
        )
    return ExperimentResult(
        name="Fig. 6 -- average server temperature (hot zone s15-18 at Ta=40C)",
        headers=headers,
        rows=rows,
        data={
            "utilizations": list(utilizations),
            "cold": [p.cold_mean_temperature for p in points],
            "hot": [p.hot_mean_temperature for p in points],
            "gap": [
                p.hot_mean_temperature - p.cold_mean_temperature for p in points
            ],
            "per_server": [p.mean_temperature for p in points],
        },
        notes=(
            "expect: hot near 40C and cold near 25C at low U; the hot/cold "
            "gap shrinking as U rises (temperatures converge toward the "
            "70C limit)"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
