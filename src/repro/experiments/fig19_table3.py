"""Fig. 19 + Table III -- consolidation in an energy-plenty situation.

Supply near the power needed for all three servers at 100 % (~750 W in
the paper; ~3 x 232 W here).  Servers start at 80/40/20 % utilization;
server C sits below the consolidation threshold, so its workload is
drained to A and B and C is shut down for the rest of the run.

Paper arithmetic (the consistency anchor for our Table I re-derivation):
580 W before consolidation, ~420 W after, ~27.5 % savings with C's
standby draw taken as zero.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.testbed_run import run_testbed, testbed_config
from repro.power.supply import plenty_supply_trace

__all__ = ["run", "main", "UTILIZATIONS"]

#: Initial utilizations of servers A, B, C (Table III).
UTILIZATIONS = (0.8, 0.4, 0.2)

N_UNITS = 30


def run(seed: int = 0) -> ExperimentResult:
    config = testbed_config()
    full_power = 3 * config.server_model.max_power + 30.0  # ~ paper's 750 W
    supply = plenty_supply_trace(
        full_power,
        period=N_UNITS * config.delta_s,
        resolution=config.delta_s,
        rng=np.random.default_rng(seed + 2019),
    )
    n_ticks = int(N_UNITS * config.eta1)
    controller, collector = run_testbed(
        supply, UTILIZATIONS, n_ticks=n_ticks, config=config, seed=seed
    )

    names = ("server-A", "server-B", "server-C")
    initial = {}
    final = {}
    for name, u0 in zip(names, UTILIZATIONS):
        node = controller.tree.by_name(name)
        utils = collector.server_series(node.node_id, "utilization")
        initial[name] = float(utils[0])
        # Average over the settled tail (last third of the run).
        final[name] = float(np.mean(utils[-n_ticks // 3:]))

    # Power savings: consolidated run vs the same servers never slept.
    no_consolidation = testbed_config(consolidation_enabled=False)
    _ctrl2, baseline = run_testbed(
        supply, UTILIZATIONS, n_ticks=n_ticks, config=no_consolidation, seed=seed
    )
    consolidated_power = collector.total_energy() / n_ticks
    baseline_power = baseline.total_energy() / n_ticks
    savings = 1.0 - consolidated_power / baseline_power

    headers = ["Server", "Initial utilization (%)", "Final utilization (%)"]
    rows = [
        [name.split("-")[1], initial[name] * 100, final[name] * 100]
        for name in names
    ]
    return ExperimentResult(
        name="Fig. 19 + Table III -- consolidation under energy plenty",
        headers=headers,
        rows=rows,
        data={
            "initial": initial,
            "final": final,
            "baseline_power": baseline_power,
            "consolidated_power": consolidated_power,
            "savings": savings,
            "c_final": final["server-C"],
        },
        notes=(
            f"average fleet power {baseline_power:.0f} W -> "
            f"{consolidated_power:.0f} W; savings {savings:.1%} "
            "(paper: ~580 W -> ~420 W, ~27.5%); server C drained to 0"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
