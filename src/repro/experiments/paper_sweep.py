"""The Sec. V-B utilization sweep shared by Figs. 5, 6, 9, 10, 11, 12.

One Willow run per utilization point on the paper's configuration
(Fig. 3 topology, hot zone on servers 15-18, supply near the fleet's
maximum power).  Results are memoised per-process since six figures
read the same sweep, and -- when :mod:`repro.experiments.cache` is
enabled -- persisted across processes keyed by the sweep parameters,
so regenerating figures one CLI invocation at a time stops re-running
the identical simulation every call.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.core.controller import run_willow
from repro.core.events import MigrationCause
from repro.experiments import cache
from repro.experiments.common import hot_zone_overrides
from repro.network.traffic import (
    migration_traffic_fraction,
    switch_migration_cost,
    switch_power_by_level,
)
from repro.power.switch import SIMULATION_SWITCH

__all__ = ["SweepPoint", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Summary of one utilization point."""

    utilization: float
    mean_power: Tuple[float, ...]  # per server, paper order (1..18)
    mean_temperature: Tuple[float, ...]
    asleep_fraction: Tuple[float, ...]
    energy: Tuple[float, ...]  # total W*ticks per server
    demand_migrations: int
    consolidation_migrations: int
    migration_traffic_fraction: float
    switch_power_l1: Dict[int, float]
    switch_migration_cost_l1: Dict[int, float]
    dropped_power: float

    @property
    def cold_mean_power(self) -> float:
        return float(np.mean(self.mean_power[:14]))

    @property
    def hot_mean_power(self) -> float:
        return float(np.mean(self.mean_power[14:]))

    @property
    def cold_mean_temperature(self) -> float:
        return float(np.mean(self.mean_temperature[:14]))

    @property
    def hot_mean_temperature(self) -> float:
        return float(np.mean(self.mean_temperature[14:]))


@lru_cache(maxsize=None)
def run_sweep(
    utilizations: Tuple[float, ...],
    n_ticks: int = 120,
    seed: int = 11,
    consolidation: bool = True,
) -> Tuple[SweepPoint, ...]:
    """Run the paper sweep; memoised on its full parameter tuple.

    In-process hits come from ``lru_cache``; cross-process hits from the
    disk cache (off by default -- the runner CLI turns it on, tests and
    benchmarks never see it).  ``run_sweep.cache_clear()`` still clears
    the in-process layer only.
    """
    from repro.core.config import WillowConfig

    key = cache.sweep_key(utilizations, n_ticks, seed, consolidation)
    cached = cache.load_sweep(key)
    if cached is not None:
        return cached

    points = []
    for utilization in utilizations:
        config = WillowConfig(consolidation_enabled=consolidation)
        controller, collector = run_willow(
            config=config,
            target_utilization=utilization,
            n_ticks=n_ticks,
            seed=seed,
            ambient_overrides=hot_zone_overrides(),
        )
        server_ids = collector.server_ids()
        points.append(
            SweepPoint(
                utilization=utilization,
                mean_power=tuple(
                    collector.mean_server(i, "power") for i in server_ids
                ),
                mean_temperature=tuple(
                    collector.mean_server(i, "temperature") for i in server_ids
                ),
                asleep_fraction=tuple(
                    float(np.mean(collector.server_series(i, "asleep")))
                    for i in server_ids
                ),
                energy=tuple(
                    float(collector.server_series(i, "power").sum())
                    for i in server_ids
                ),
                demand_migrations=collector.migration_count(MigrationCause.DEMAND),
                consolidation_migrations=collector.migration_count(
                    MigrationCause.CONSOLIDATION
                ),
                migration_traffic_fraction=migration_traffic_fraction(
                    collector, SIMULATION_SWITCH, level=1
                ),
                switch_power_l1=switch_power_by_level(collector, level=1),
                switch_migration_cost_l1=switch_migration_cost(
                    collector, SIMULATION_SWITCH, level=1
                ),
                dropped_power=collector.total_dropped_power(),
            )
        )
    result = tuple(points)
    cache.store_sweep(key, result)
    return result
