"""Figs. 17 + 18 -- testbed temperature behaviour.

Fig. 17: temperature time series of server A through the
energy-deficient run (tracks its power as supply and placement change;
dips during plunges when A sheds or throttles).
Fig. 18: run-average temperature of each server.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.fig15_16_deficit import N_UNITS, run_deficit_scenario

__all__ = ["run", "main"]


def run(seed: int = 0) -> ExperimentResult:
    controller, collector, config, _supply = run_deficit_scenario(seed)

    names = ("server-A", "server-B", "server-C")
    series = {}
    means = {}
    for name in names:
        node = controller.tree.by_name(name)
        temps = collector.server_series(node.node_id, "temperature")
        series[name] = temps
        means[name] = float(np.mean(temps))

    # Fig. 17 table: server A temperature per time unit.
    a_temps = series["server-A"].reshape(N_UNITS, config.eta1).mean(axis=1)
    headers = ["time unit", "server A temp (C)"]
    rows = [[unit, float(a_temps[unit])] for unit in range(N_UNITS)]
    return ExperimentResult(
        name="Figs. 17+18 -- testbed temperatures (deficit run)",
        headers=headers,
        rows=rows,
        data={
            "series": series,
            "mean_temperature": means,
            "a_per_unit": a_temps,
            "t_limit": config.thermal.t_limit,
        },
        notes=(
            "Fig. 18 averages: "
            + ", ".join(f"{n[-1]}={means[n]:.1f}C" for n in names)
            + " -- A (highest load) runs hottest; all below the 70C limit"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
