"""Fig. 12 -- migration cost directly associated with level-1 switches.

"Figure 12 shows the migration cost that is directly associated with
the switches.  This corresponds to the trend in total number of
migrations that are done at different utilizations as shown in
Figure 10."
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.common import ExperimentResult, PAPER_UTILIZATIONS
from repro.experiments.paper_sweep import run_sweep

__all__ = ["run", "main"]


def run(
    utilizations: Tuple[float, ...] = PAPER_UTILIZATIONS,
    n_ticks: int = 120,
    seed: int = 11,
) -> ExperimentResult:
    points = run_sweep(tuple(utilizations), n_ticks=n_ticks, seed=seed)
    headers = ["U (%)", "total cost (W*ticks)", "per-switch max"]
    rows = []
    totals = []
    for point in points:
        costs = list(point.switch_migration_cost_l1.values())
        total = sum(costs)
        totals.append(total)
        rows.append(
            [point.utilization * 100, total, max(costs) if costs else 0.0]
        )
    return ExperimentResult(
        name="Fig. 12 -- migration cost in level-1 switches",
        headers=headers,
        rows=rows,
        data={"utilizations": list(utilizations), "totals": totals},
        notes="expect: tracks the Fig. 10 migration-traffic trend",
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
