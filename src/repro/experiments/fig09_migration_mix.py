"""Fig. 9 -- demand-driven vs consolidation-driven migrations.

"Migrations in Willow are either demand driven or consolidation
driven.  While the former cause is more often seen in high utilization
cases the latter is observed a lot in low utilization cases."
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.common import ExperimentResult, PAPER_UTILIZATIONS
from repro.experiments.paper_sweep import run_sweep

__all__ = ["run", "main"]


def run(
    utilizations: Tuple[float, ...] = PAPER_UTILIZATIONS,
    n_ticks: int = 120,
    seed: int = 11,
) -> ExperimentResult:
    points = run_sweep(tuple(utilizations), n_ticks=n_ticks, seed=seed)
    headers = ["U (%)", "demand-driven", "consolidation-driven", "total"]
    rows = []
    for point in points:
        rows.append(
            [
                point.utilization * 100,
                point.demand_migrations,
                point.consolidation_migrations,
                point.demand_migrations + point.consolidation_migrations,
            ]
        )
    return ExperimentResult(
        name="Fig. 9 -- demand-driven vs consolidation-driven migrations",
        headers=headers,
        rows=rows,
        data={
            "utilizations": list(utilizations),
            "demand": [p.demand_migrations for p in points],
            "consolidation": [p.consolidation_migrations for p in points],
        },
        notes=(
            "expect: consolidation-driven dominating at low U, "
            "demand-driven at high U"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
