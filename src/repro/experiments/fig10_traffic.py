"""Fig. 10 -- migration traffic normalised to maximum network traffic.

"We see that ... the migrations are increasing with increase in
utilization.  However at high utilization levels the migration traffic
is decreasing ... at higher utilizations very less number of
migrations occur since none of the servers has a surplus to
accommodate the deficit that is arising in the other servers."
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.common import ExperimentResult, PAPER_UTILIZATIONS
from repro.experiments.paper_sweep import run_sweep

__all__ = ["run", "main"]


def run(
    utilizations: Tuple[float, ...] = PAPER_UTILIZATIONS,
    n_ticks: int = 120,
    seed: int = 11,
) -> ExperimentResult:
    points = run_sweep(tuple(utilizations), n_ticks=n_ticks, seed=seed)
    headers = ["U (%)", "migration traffic (% of max)", "migrations"]
    rows = []
    for point in points:
        rows.append(
            [
                point.utilization * 100,
                point.migration_traffic_fraction * 100,
                point.demand_migrations + point.consolidation_migrations,
            ]
        )
    fractions = [p.migration_traffic_fraction for p in points]
    return ExperimentResult(
        name="Fig. 10 -- migration traffic normalised to max network traffic",
        headers=headers,
        rows=rows,
        data={
            "utilizations": list(utilizations),
            "fractions": fractions,
        },
        notes=(
            "expect: rising through mid utilizations, then falling at high "
            "U where no surplus remains to migrate into"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
