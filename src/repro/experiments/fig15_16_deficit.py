"""Figs. 15 + 16 -- energy-deficient run: supply plunges trigger
migration bursts, then decision stability holds.

Three servers at an overall average utilization near 60 % (A high at
90 %, B at 70 %, C light at 20 %); demands fluctuate smoothly (the
testbed ran live web applications) and the supply plunges at time
units 7, 12 and 25 with the first persisting to unit 10.  The paper's
observations, all asserted by the benches:

* migrations burst when the supply plunges;
* no further migrations while a plunge persists ("Once the migrations
  are done there is enough margin left to handle the demand
  variations") -- the decision-stability property;
* recovery of supply triggers nothing (unidirectional control).

Scenario constants were chosen so each plunge catches a different
server at a demand peak (per-server sine phases) -- standing in for
the uncontrolled load drift of the real testbed.  A migration may
also fire outside plunges when a server's fluctuating demand crosses
its own 232 W circuit/thermal cap; that is constraint-driven Willow
behaviour too, and the benches only bound (not forbid) it.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.testbed_run import (
    build_workload,
    run_testbed,
    testbed_config,
)
from repro.power.supply import SupplyTrace, step_supply
from repro.topology.builders import build_testbed

__all__ = [
    "run",
    "main",
    "run_deficit_scenario",
    "build_deficit_supply",
    "PLUNGE_UNITS",
    "UTILIZATIONS",
    "N_UNITS",
]

#: Supply-plunge windows in Fig. 15 time units (start, end) and their
#: relative depths (later plunges cut deeper, re-triggering shedding).
PLUNGE_UNITS: Tuple[Tuple[int, int], ...] = ((7, 10), (12, 14), (25, 27))
PLUNGE_DEPTHS: Tuple[float, ...] = (0.10, 0.12, 0.12)

#: Server utilization targets: overall average ~60 % (Sec. V-C4).
UTILIZATIONS = (0.9, 0.7, 0.2)

#: Per-server demand sine phases (A peaks near plunge 1, etc.).
HOST_PHASES = (2.0 / 3.0, 1.0 / 3.0, 0.0)
DEMAND_AMPLITUDE = 0.25
DEMAND_PERIOD_TICKS = 48.0
SUPPLY_SLACK_W = 140.0

N_UNITS = 30


def build_deficit_supply(
    nominal: float,
    delta_s: float,
    *,
    depths: Sequence[float] = PLUNGE_DEPTHS,
    n_units: int = N_UNITS,
    plunges: Sequence[Tuple[int, int]] = PLUNGE_UNITS,
) -> SupplyTrace:
    """The Fig. 15 pattern on the supply-period grid.

    One Fig. 15 "time unit" = one supply period (``delta_s`` ticks).
    """
    if len(depths) != len(plunges):
        raise ValueError("need one depth per plunge window")
    segments = []
    for unit in range(n_units):
        budget = nominal
        for (start, end), depth in zip(plunges, depths):
            if start <= unit < end:
                budget = nominal * (1.0 - depth)
                break
        segments.append((unit * delta_s, budget))
    return step_supply(segments)


def run_deficit_scenario(seed: int = 0):
    """Run the shared Fig. 15-18 scenario.

    Returns ``(controller, collector, config, supply)``.
    """
    config = testbed_config(p_min=6.0, consolidation_enabled=False)
    tree = build_testbed()
    placement, _trace = build_workload(tree, UTILIZATIONS)
    demand = sum(vm.app.mean_power for vm in placement.vms)
    nominal = (
        config.server_model.static_power * 3 + demand + SUPPLY_SLACK_W
    )
    supply = build_deficit_supply(nominal, config.delta_s)
    n_ticks = int(N_UNITS * config.eta1)
    controller, collector = run_testbed(
        supply,
        UTILIZATIONS,
        n_ticks=n_ticks,
        config=config,
        seed=seed,
        demand_amplitude=DEMAND_AMPLITUDE,
        demand_period=DEMAND_PERIOD_TICKS,
        host_phases=HOST_PHASES,
    )
    return controller, collector, config, supply


def migrations_per_unit(collector, config) -> np.ndarray:
    """Fig. 16's series: migration count per Fig. 15 time unit."""
    per_unit = np.zeros(N_UNITS, dtype=int)
    for migration in collector.migrations:
        unit = int(migration.time // config.delta_s)
        if unit < N_UNITS:
            per_unit[unit] += 1
    return per_unit


def run(seed: int = 0) -> ExperimentResult:
    controller, collector, config, supply = run_deficit_scenario(seed)
    per_unit = migrations_per_unit(collector, config)
    supply_series = [supply.at(u * config.delta_s) for u in range(N_UNITS)]

    headers = ["time unit", "supply (W)", "migrations"]
    rows = [
        [unit, supply_series[unit], int(per_unit[unit])]
        for unit in range(N_UNITS)
    ]

    # Burst = a migration at the plunge-onset unit or the next one (the
    # supply event lands on the unit boundary; shedding may complete a
    # few ticks into the window).
    bursts: Dict[int, int] = {
        start: int(per_unit[start] + per_unit[min(start + 1, N_UNITS - 1)])
        for start, _end in PLUNGE_UNITS
    }
    persistence_units = [
        u for start, end in PLUNGE_UNITS for u in range(start + 2, end)
    ]
    recovery_units = [end for _start, end in PLUNGE_UNITS]
    quiet_units = [
        u
        for u in range(1, N_UNITS)
        if u not in {s for s, _e in PLUNGE_UNITS}
        and u not in {s + 1 for s, _e in PLUNGE_UNITS}
    ]
    return ExperimentResult(
        name="Figs. 15+16 -- energy-deficient supply and migration bursts",
        headers=headers,
        rows=rows,
        data={
            "supply": supply_series,
            "migrations_per_unit": per_unit,
            "bursts": bursts,
            "migrations_during_persistence": int(
                sum(per_unit[u] for u in persistence_units)
            ),
            "migrations_at_recovery": int(
                sum(per_unit[u] for u in recovery_units if u < N_UNITS)
            ),
            "off_plunge_migrations": int(sum(per_unit[u] for u in quiet_units)),
            "total_migrations": int(per_unit.sum()),
        },
        notes=(
            "expect: a burst at each plunge onset (units 7, 12, 25), "
            "quiet while a plunge persists and when supply recovers"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
