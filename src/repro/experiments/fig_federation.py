"""Geo-federation sweep: cross-site shifting vs isolated sites.

Beyond the paper.  Sec. I motivates Willow with renewable supply
variation; this sweep runs N sites on anti-correlated solar traces
(phase-shifted across longitudes, so one site's night is another's
noon) and measures what supply-aware load shifting buys over the same
sites run in isolation.

Each cell runs the identical site fleet twice -- once under the
``neutral`` policy (no shifting: the isolated baseline) and once under
``proportional`` -- sweeping the WAN migration cost and the per-site
battery size.  Headline expectations, asserted in
``tests/test_federation.py``:

* federated dropped demand is strictly below the isolated baseline in
  every cell (anti-correlated supply means someone always has
  headroom);
* no configuration ever violates ``T_limit`` -- shifted load still
  passes through every site's own thermal-capped waterfill.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import WillowConfig
from repro.experiments.common import ExperimentResult, battery_override
from repro.federation import SiteSpec, run_federation
from repro.metrics.federation import summarize_federation
from repro.power.battery import Battery
from repro.power.supply import renewable_supply

__all__ = ["run", "main", "build_specs"]

WAN_COST_FACTORS = (1.0, 4.0)
BATTERY_CAPACITIES = (0.0, 1500.0)

#: Solar sizing: peak covers the fleet comfortably, the overnight base
#: does not -- the shortfall is what federation (and batteries) recover.
SOLAR_PEAK = 5200.0
SOLAR_BASE_FRACTION = 0.30
DAY_LENGTH = 96.0


def build_specs(
    n_sites: int,
    *,
    battery_capacity: float = 0.0,
    battery_rate: float | None = None,
    target_utilization: float = 0.35,
    solar_peak: float = SOLAR_PEAK,
    seed: int = 1,
) -> list:
    """Site specs with solar humps spread evenly around the clock."""
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    specs = []
    for i in range(n_sites):
        battery = None
        if battery_capacity > 0:
            # Empty at t=0 and rate-limited (default: 8-tick full
            # discharge): the battery has to earn its charge from
            # daytime surplus.
            battery = Battery(
                battery_capacity,
                battery_rate
                if battery_rate is not None
                else battery_capacity / 8.0,
                charge=0.0,
            )
        specs.append(
            SiteSpec(
                name=f"site{i}",
                seed=seed + i,
                target_utilization=target_utilization,
                supply=renewable_supply(
                    solar_peak,
                    base_fraction=SOLAR_BASE_FRACTION,
                    day_length=DAY_LENGTH,
                    cloud_noise=0.0,
                    phase=i / n_sites,
                ),
                battery=battery,
            )
        )
    return specs


def _thermal_violations(coordinator) -> int:
    return sum(
        server.thermal.violations
        for site in coordinator.sites
        for server in site.controller.servers.values()
    )


def run(
    wan_cost_factors: Sequence[float] = WAN_COST_FACTORS,
    battery_capacities: Sequence[float] = BATTERY_CAPACITIES,
    n_sites: int = 2,
    n_ticks: int = 192,
    seed: int = 1,
    target_utilization: float = 0.35,
    policy: str = "proportional",
    vectorized: bool = False,
) -> ExperimentResult:
    config = WillowConfig()
    t_limit = config.thermal.t_limit

    # `runner --battery CAPACITY[:RATE]` replaces the battery axis.
    override = battery_override()
    battery_rate = None
    if override is not None:
        battery_capacities = (override.capacity,)
        battery_rate = override.max_rate

    headers = [
        "WAN cost (W)",
        "battery (W*ticks)",
        "isolated dropped",
        "federated dropped",
        "reduction",
        "cross moves",
        "shifted (W)",
        "worst T (C)",
        "T violations",
    ]
    rows = []
    sweep = {}
    for capacity in battery_capacities:
        specs_kwargs = dict(
            battery_capacity=capacity,
            battery_rate=battery_rate,
            target_utilization=target_utilization,
            seed=seed,
        )
        isolated = run_federation(
            build_specs(n_sites, **specs_kwargs),
            n_ticks=n_ticks,
            policy="neutral",
            vectorized=vectorized,
        )
        iso_summary = summarize_federation(isolated)
        for factor in wan_cost_factors:
            wan_cost = factor * config.migration_cost_power
            federated = run_federation(
                build_specs(n_sites, **specs_kwargs),
                n_ticks=n_ticks,
                policy=policy,
                wan_cost_power=wan_cost,
                vectorized=vectorized,
            )
            fed_summary = summarize_federation(federated)
            iso_dropped = iso_summary.total_dropped_power
            fed_dropped = fed_summary.total_dropped_power
            reduction = (
                (iso_dropped - fed_dropped) / iso_dropped
                if iso_dropped > 0
                else 0.0
            )
            worst_temp = max(
                iso_summary.peak_temperature, fed_summary.peak_temperature
            )
            violations = _thermal_violations(isolated) + _thermal_violations(
                federated
            )
            rows.append(
                [
                    f"{wan_cost:.0f}",
                    f"{capacity:.0f}",
                    f"{iso_dropped:.0f}",
                    f"{fed_dropped:.0f}",
                    f"{reduction:.1%}",
                    fed_summary.cross_migrations,
                    f"{fed_summary.cross_watts:.0f}",
                    f"{worst_temp:.1f}",
                    violations,
                ]
            )
            sweep[(wan_cost, capacity)] = {
                "isolated_dropped": iso_dropped,
                "federated_dropped": fed_dropped,
                "reduction": reduction,
                "cross_migrations": fed_summary.cross_migrations,
                "cross_watts": fed_summary.cross_watts,
                "worst_temp": worst_temp,
                "violations": violations,
            }

    return ExperimentResult(
        name=(
            "Federation (beyond the paper): cross-site shifting on "
            "anti-correlated solar"
        ),
        headers=headers,
        rows=rows,
        data={
            "sweep": sweep,
            "t_limit": t_limit,
            "n_sites": n_sites,
            "policy": policy,
        },
        notes=(
            f"{n_sites} sites, solar humps {1.0 / n_sites:.2f} day apart, "
            f"policy '{policy}' vs the same sites isolated.  Shifting must "
            "strictly reduce dropped demand in every cell, with "
            f"T <= {t_limit:.0f} C everywhere."
        ),
    )


def main() -> None:
    result = run()
    print(result.format())
    cells = result.data["sweep"].values()
    strict = all(
        cell["federated_dropped"] < cell["isolated_dropped"]
        for cell in cells
    )
    violations = sum(cell["violations"] for cell in cells)
    print(
        f"federation benefit: {'OK' if strict else 'ABSENT'} "
        f"(strict drop reduction in {sum(c['federated_dropped'] < c['isolated_dropped'] for c in cells)}"
        f"/{len(cells)} cells, {violations} thermal violations)"
    )


if __name__ == "__main__":
    main()
