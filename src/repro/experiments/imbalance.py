"""Power imbalance over time (Eq. 9) -- Willow vs no migrations.

The paper defines ``P_imb(l) = P_def(l) + min(P_def(l), P_sur(l))`` as
"a measure of the inefficiency in allocation of the power budgets" and
designs the migration scheme explicitly so that it does not "leave a
few servers in the power deficient state while some servers have
excess power budgets."  This experiment measures it directly: the same
fleet, same demands, same supply plunge -- with Willow's migrations on
vs off -- and compares the server-level imbalance series.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.experiments.common import ExperimentResult, hot_zone_overrides
from repro.power.supply import step_supply
from repro.sim.rng import RandomStreams
from repro.topology.builders import build_paper_simulation
from repro.workload.generator import (
    random_placement,
    scale_for_target_utilization,
)
from repro.workload.applications import SIMULATION_APPS

__all__ = ["run", "main"]


def _run_variant(migrations_enabled: bool, n_ticks: int, seed: int):
    tree = build_paper_simulation()
    # Disabling migrations = an absurd margin (nothing ever qualifies)
    # and no consolidation; budgets and demands evolve identically.
    if migrations_enabled:
        config = WillowConfig()
    else:
        config = WillowConfig(p_min=1e9, consolidation_enabled=False)
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()], SIMULATION_APPS, streams["placement"]
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.6)
    nominal = 18 * 450.0
    supply = step_supply([(0.0, nominal), (n_ticks / 3, 0.8 * nominal)])
    controller = WillowController(
        tree,
        config,
        supply,
        placement,
        ambient_overrides=hot_zone_overrides(),
        seed=seed,
    )
    collector = controller.run(n_ticks)
    return np.array([w for _t, w in collector.imbalance])


def run(n_ticks: int = 90, seed: int = 19) -> ExperimentResult:
    with_migrations = _run_variant(True, n_ticks, seed)
    without = _run_variant(False, n_ticks, seed)

    headers = ["window", "imbalance w/ Willow (W)", "imbalance w/o migrations (W)"]
    rows = []
    for start in range(0, n_ticks, 10):
        stop = min(start + 10, n_ticks)
        rows.append(
            [
                f"{start}-{stop - 1}",
                float(np.mean(with_migrations[start:stop])),
                float(np.mean(without[start:stop])),
            ]
        )
    # Steady-state comparison over the post-plunge tail.
    tail = slice(int(n_ticks * 0.5), n_ticks)
    return ExperimentResult(
        name="Eq. 9 -- power imbalance, Willow vs no migrations",
        headers=headers,
        rows=rows,
        data={
            "with": with_migrations,
            "without": without,
            "tail_with": float(np.mean(with_migrations[tail])),
            "tail_without": float(np.mean(without[tail])),
        },
        notes=(
            "expect: Willow's migrations shrink the post-plunge "
            "imbalance relative to an identical fleet that cannot migrate"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
