"""Process-pool fan-out for the experiment layer.

Every figure in the paper is an independent simulation (or a sweep of
independent simulations), so the experiment layer parallelises
trivially: one process per sweep point, per replication seed, or per
registered experiment.  Determinism is untouched -- each unit of work
seeds its own :class:`~repro.sim.rng.RandomStreams`, so results are
identical to the serial path, just reordered in wall-clock time.

Worker functions must be importable (top level) because units of work
cross a process boundary.  ``parallel_map`` degrades to a plain serial
map for one item or one worker, which also keeps coverage/debug runs
single-process.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Iterable, List, Mapping, Sequence, Tuple

from repro.analysis.replication import ReplicationResult, replicate
from repro.experiments import cache

__all__ = [
    "default_workers",
    "parallel_map",
    "run_sweep_parallel",
    "replicate_parallel",
    "run_experiments_parallel",
]


def default_workers() -> int:
    """One process per core, minus one to keep the machine responsive."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_map(fn: Callable, items: Iterable, workers: int | None = None) -> List:
    """``[fn(x) for x in items]`` over a process pool, order-preserving.

    ``workers=None`` uses :func:`default_workers`; ``workers=1`` (or a
    single item) runs serially in-process.  ``fn`` and the items must be
    picklable when a pool is used.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


# ----------------------------------------------------------- sweep points
def _sweep_point(params: Tuple[float, int, int, bool]):
    utilization, n_ticks, seed, consolidation = params
    from repro.experiments.paper_sweep import run_sweep

    return run_sweep((utilization,), n_ticks, seed, consolidation)[0]


def run_sweep_parallel(
    utilizations: Sequence[float],
    n_ticks: int = 120,
    seed: int = 11,
    consolidation: bool = True,
    workers: int | None = None,
):
    """The paper sweep with one process per utilization point.

    Bit-identical to ``run_sweep(tuple(utilizations), ...)``: every
    point is an independent run with its own seeded streams.  The
    assembled tuple is written to the disk cache under the full-sweep
    key (when caching is enabled), so a later serial ``run_sweep`` call
    in a fresh process hits instead of recomputing.
    """
    utilizations = tuple(float(u) for u in utilizations)
    key = cache.sweep_key(utilizations, n_ticks, seed, consolidation)
    cached = cache.load_sweep(key)
    if cached is not None:
        return cached
    params = [(u, n_ticks, seed, consolidation) for u in utilizations]
    points = tuple(parallel_map(_sweep_point, params, workers))
    cache.store_sweep(key, points)
    return points


# ----------------------------------------------------------- replications
def _call_run(run: Callable[[int], Mapping[str, float]], seed: int) -> dict:
    return dict(run(seed))


def replicate_parallel(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    workers: int | None = None,
) -> ReplicationResult:
    """:func:`repro.analysis.replicate` with one process per seed.

    ``run`` must be a top-level (picklable) callable.  Validation and
    assembly reuse :func:`replicate`, so metric-key consistency checks
    behave exactly like the serial path.
    """
    seeds = tuple(int(s) for s in seeds)
    outcomes = parallel_map(partial(_call_run, run), seeds, workers)
    by_seed = dict(zip(seeds, outcomes))
    return replicate(lambda seed: by_seed[seed], seeds)


# ------------------------------------------------------ whole experiments
def _run_experiment(name: str) -> Tuple[str, str]:
    from repro.experiments.runner import REGISTRY

    return name, REGISTRY[name]().format()


def run_experiments_parallel(
    names: Sequence[str], workers: int | None = None
) -> List[Tuple[str, str]]:
    """Run registered experiments concurrently; returns (name, table).

    Results come back in registry order regardless of completion order.
    """
    return parallel_map(_run_experiment, list(names), workers)
