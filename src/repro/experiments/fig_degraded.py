"""Degraded control plane: divergence under drop-rate x latency.

Beyond the paper.  The paper evaluates Willow with an ideal control
plane; this sweep runs the :class:`~repro.control_plane.controller.
DistributedWillowController` across a grid of per-link drop
probabilities and latencies and measures how far budgets, power and
temperatures drift from the ideal synchronous controller (same seed,
same demand randomness), plus whether the thermal-safety invariant
(``T <= T_limit``) survives.

Headline expectations, asserted in ``tests/test_experiments.py`` style
by ``tests/test_control_plane.py``:

* the (drop=0, latency=0) corner diverges by exactly zero;
* divergence grows with drop rate at fixed latency;
* no configuration ever violates ``T_limit`` -- stale budgets decay
  toward the thermally-safe floor instead of running open-loop.
"""

from __future__ import annotations

from typing import Sequence

from repro.control_plane.config import ControlPlaneConfig, LinkProfile
from repro.control_plane.controller import run_distributed
from repro.control_plane.divergence import divergence_summary
from repro.core.config import WillowConfig
from repro.core.controller import run_willow
from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]

DROP_RATES = (0.0, 0.05, 0.2)
LATENCIES = (0, 2)


def run(
    drop_rates: Sequence[float] = DROP_RATES,
    latencies: Sequence[int] = LATENCIES,
    n_ticks: int = 60,
    seed: int = 3,
    target_utilization: float = 0.6,
) -> ExperimentResult:
    config = WillowConfig()
    _, ideal = run_willow(
        config=config,
        target_utilization=target_utilization,
        n_ticks=n_ticks,
        seed=seed,
    )
    t_limit = config.thermal.t_limit

    headers = [
        "drop",
        "latency",
        "budget divergence (W, mean/max)",
        "temp divergence (C, mean)",
        "delivered/sent",
        "retransmits",
        "T violations",
    ]
    rows = []
    sweep = {}
    for latency in latencies:
        for drop in drop_rates:
            cp = ControlPlaneConfig(
                default_link=LinkProfile(
                    latency_ticks=latency, jitter_ticks=min(latency, 1),
                    drop_prob=drop,
                )
            )
            controller, collector = run_distributed(
                config=config,
                control_plane=cp,
                target_utilization=target_utilization,
                n_ticks=n_ticks,
                seed=seed,
            )
            summary = divergence_summary(ideal, collector)
            stats = controller.transport_stats()
            violations = sum(
                1
                for s in collector.server_samples
                if s.temperature > t_limit + 1e-6
            )
            sweep[(drop, latency)] = {
                **summary,
                "violations": violations,
                "sent": stats.sent,
                "delivered": stats.delivered,
                "retransmits": stats.retransmits,
            }
            rows.append(
                [
                    f"{drop:.2f}",
                    latency,
                    f"{summary['budget_mean']:.2f} / {summary['budget_max']:.1f}",
                    f"{summary['temperature_mean']:.3f}",
                    f"{stats.delivered}/{stats.sent}",
                    stats.retransmits,
                    violations,
                ]
            )

    return ExperimentResult(
        name="Degraded control plane -- divergence vs drop rate x latency",
        headers=headers,
        rows=rows,
        data={
            "sweep": sweep,
            "drop_rates": tuple(drop_rates),
            "latencies": tuple(latencies),
            "t_limit": t_limit,
        },
        notes=(
            "divergence is |ideal - distributed| over per-server budgets "
            "and temperatures; the (0.00, 0) corner is the exact-equivalence "
            "contract, and stale budgets decaying toward the thermal floor "
            "keep every cell violation-free"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
