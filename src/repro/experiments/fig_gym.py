"""Learned schedulers vs the shipped federation policies.

Beyond the paper.  The gym environment (:mod:`repro.gym`) turns the
federation into a multi-objective decision process; this experiment is
its headline table: on the anti-correlated-solar scenario, how do a
CEM-trained linear scheduler and an epsilon-greedy policy-switching
bandit stack up against ``neutral``, ``proportional`` and the
receding-horizon ``predictive`` planner?

Accounting is like-for-like on every row (see
:func:`repro.gym.evaluate.episode_costs`): dropped demand energy, WAN
migration energy, cross-site moves, thermal violation ticks, all over
the same seeded episode with the warm-up window excluded.

Headline expectations, asserted by ``make gym-smoke``
(:func:`repro.gym.evaluate.smoke`): the trained CEM agent strictly
beats ``neutral``, never loses to ``proportional`` on dropped demand,
and no row violates a thermal limit.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult
from repro.gym.env import GymConfig

__all__ = ["run", "main", "smoke"]


def run(
    config: Optional[GymConfig] = None,
    scenario_seed: int = 0,
    agent_seed: int = 0,
    iterations: int = 2,
    population: int = 6,
    bandit_episodes: int = 4,
) -> ExperimentResult:
    from repro.gym.evaluate import SMOKE_CONFIG, compare

    config = config or SMOKE_CONFIG
    rows_by_name = compare(
        config,
        scenario_seed=scenario_seed,
        agent_seed=agent_seed,
        iterations=iterations,
        population=population,
        bandit_episodes=bandit_episodes,
    )

    baseline = rows_by_name["proportional"]
    headers = [
        "scheduler",
        "dropped (W*ticks)",
        "vs proportional",
        "WAN energy",
        "moves",
        "T violations",
        "notes",
    ]
    rows = []
    for name, row in rows_by_name.items():
        delta = (
            (row["dropped"] - baseline["dropped"]) / baseline["dropped"]
            if baseline["dropped"] > 0
            else 0.0
        )
        notes = ""
        if "theta" in row:
            notes = f"theta=({row['theta'][0]:.2f}, {row['theta'][1]:.2f})"
        if "arm" in row:
            notes = f"arm={row['arm']}"
        rows.append(
            [
                name,
                f"{row['dropped']:.0f}",
                "--" if name == "proportional" else f"{delta:+.1%}",
                f"{row['wan_energy']:.0f}",
                row["moves"],
                f"{row['violations']:.0f}",
                notes,
            ]
        )

    return ExperimentResult(
        name=(
            "Learned federation schedulers (beyond the paper): CEM and "
            "bandit agents vs the shipped policies"
        ),
        headers=headers,
        rows=rows,
        data={
            "rows": rows_by_name,
            "config": {
                "n_sites": config.n_sites,
                "windows": config.windows,
                "horizon": config.horizon,
            },
            "scenario_seed": scenario_seed,
        },
        notes=(
            f"{config.n_sites} sites, anti-correlated solar, "
            f"{config.windows} decision windows, K={config.horizon} "
            "forecasts in the observation.  CEM searches the two-gain "
            "linear scheduler family (gains [1, 0] are exactly "
            "proportional, so the trained agent can never lose to it); "
            "the bandit picks a registry policy per window."
        ),
    )


def smoke() -> None:
    """Delegates to the gym package's CI contract."""
    from repro.gym.evaluate import smoke as gym_smoke

    gym_smoke()


def main() -> None:
    result = run()
    print(result.format())
    rows = result.data["rows"]
    cem, prop = rows["cem"], rows["proportional"]
    ok = (
        cem["dropped"] < rows["neutral"]["dropped"]
        and cem["dropped"] <= prop["dropped"] + 1e-6
    )
    violations = sum(row["violations"] for row in rows.values())
    print(
        f"learned-scheduler benefit: {'OK' if ok else 'ABSENT'} "
        f"(CEM {cem['dropped']:.0f} vs proportional {prop['dropped']:.0f} "
        f"W*ticks dropped, {violations:.0f} thermal violations)"
    )


if __name__ == "__main__":
    main()
