"""Table I -- utilization vs power consumption (testbed baseline).

The numeric column of Table I is corrupted in the available paper text;
the model here is re-derived from the intact arithmetic of Sec. V-C5
(580 W at 80/40/20 %, ~27.5 % consolidation saving, ~232 W at 100 %),
giving ``P(u) = 159.5 + 72.5 u``.  The experiment "measures" the model
by running a single server at each utilization and reading its wall
power, mirroring the paper's baseline profiling run.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.power.server import TESTBED_SERVER

__all__ = ["run", "main", "PAPER_UTILIZATION_POINTS"]

#: The utilization points Table I samples.
PAPER_UTILIZATION_POINTS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    utilizations: Sequence[float] = PAPER_UTILIZATION_POINTS,
) -> ExperimentResult:
    headers = ["Utilization (%)", "Average power consumed (W)"]
    rows = []
    powers = []
    for u in utilizations:
        p = TESTBED_SERVER.power(u)
        powers.append(p)
        rows.append([u * 100, p])
    return ExperimentResult(
        name="Table I -- utilization vs power consumption",
        headers=headers,
        rows=rows,
        data={
            "utilizations": list(utilizations),
            "powers": powers,
            "static_power": TESTBED_SERVER.static_power,
            "slope": TESTBED_SERVER.slope,
        },
        notes=(
            "linear P(u)=159.5+72.5u re-derived from Sec. V-C5 arithmetic "
            "(Table I numerals corrupted in source text); consistency "
            "checks: P(80)+P(40)+P(20)=580 W, consolidation saving 27.5%"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
