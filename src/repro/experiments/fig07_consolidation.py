"""Fig. 7 -- per-server power saved by consolidation at U = 40 %.

"Figure 7 shows the power savings achieved in each server at 40%
utilization ... maximum power savings is achieved in the last four
servers.  This is because Willow tries to move as much work away from
these servers as possible due to their high temperatures and hence
they remain shut down for more time."

Savings are measured as the per-server energy difference between an
identical run (same seed, same demands) with consolidation disabled
and the normal run.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.paper_sweep import run_sweep

__all__ = ["run", "main"]


def run(
    utilization: float = 0.4,
    n_ticks: int = 120,
    seed: int = 11,
) -> ExperimentResult:
    (with_consolidation,) = run_sweep(
        (utilization,), n_ticks=n_ticks, seed=seed, consolidation=True
    )
    (without,) = run_sweep(
        (utilization,), n_ticks=n_ticks, seed=seed, consolidation=False
    )
    savings = [
        (off - on) / n_ticks  # average watts saved
        for on, off in zip(with_consolidation.energy, without.energy)
    ]
    headers = ["server", "saved (W avg)", "asleep frac", "ambient"]
    rows = []
    for i, saved in enumerate(savings):
        rows.append(
            [
                f"server-{i + 1}",
                saved,
                with_consolidation.asleep_fraction[i],
                "40C" if i >= 14 else "25C",
            ]
        )
    hot_mean = float(np.mean(savings[14:]))
    cold_mean = float(np.mean(savings[:14]))
    return ExperimentResult(
        name=f"Fig. 7 -- power saved by consolidation (U={utilization:.0%})",
        headers=headers,
        rows=rows,
        data={
            "savings": savings,
            "hot_mean_saving": hot_mean,
            "cold_mean_saving": cold_mean,
            "asleep_fraction": list(with_consolidation.asleep_fraction),
        },
        notes=(
            f"hot-zone mean saving {hot_mean:.1f} W vs cold-zone "
            f"{cold_mean:.1f} W -- paper expects the hot zone to save most"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
