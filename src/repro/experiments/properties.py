"""Sec. V-A -- analytical properties, checked empirically.

* **delta-convergence** (V-A1): update propagation delay through the
  hierarchy and the recommended ``Delta_D``.
* **Decision complexity** (V-A2): planner wall time across data-center
  sizes; with a bounded branching factor the per-level work is
  constant, so decisions scale with tree height, i.e. O(log n).
* **Property 3**: <= 2 control messages per link per ``Delta_D``.
* **Property 4 / ping-pong**: residence time of migrated demands under
  steady demand.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import WillowConfig
from repro.core.controller import run_willow
from repro.experiments.common import ExperimentResult
from repro.metrics.convergence import (
    propagation_delay,
    recommended_delta_d,
)
from repro.metrics.stability import count_ping_pongs, min_residence_time
from repro.network.messages import max_messages_per_link, verify_message_bound
from repro.topology.builders import build_balanced

__all__ = ["run", "main"]


def run(
    heights: Sequence[int] = (2, 3, 4, 5),
    per_level_latency_ms: float = 10.0,
    n_ticks: int = 60,
    seed: int = 5,
) -> ExperimentResult:
    rows = []
    headers = ["check", "value", "expectation"]

    # delta-convergence: h levels at <= 10 ms per level.
    for height in heights:
        delta = propagation_delay(height, per_level_latency_ms)
        safe = recommended_delta_d(height, per_level_latency_ms)
        rows.append(
            [
                f"delta-convergence h={height}",
                f"delta={delta:.0f}ms, Delta_D>={safe:.0f}ms",
                "delta<=50ms, Delta_D>=500ms for h<=5",
            ]
        )

    # Property 3 + Property 4 on a live run.
    controller, collector = run_willow(
        config=WillowConfig(),
        target_utilization=0.5,
        n_ticks=n_ticks,
        seed=seed,
    )
    bound_ok = verify_message_bound(collector, bound=2)
    worst = max(max_messages_per_link(collector).values())
    rows.append(
        ["Property 3 messages/link/tick", f"max={worst}, ok={bound_ok}", "<= 2"]
    )

    ping_pongs = count_ping_pongs(controller.vms, window=10.0)
    residence = min_residence_time(controller.vms, now=float(n_ticks))
    rows.append(
        [
            "Property 4 stability",
            f"min residence={residence:.1f} ticks, ping-pongs(10)={ping_pongs}",
            "residence >= Delta_f under steady demand",
        ]
    )

    # Decision-time scaling over balanced trees (branching factor 3).
    from repro.metrics.convergence import decision_time_scaling

    def build_and_plan(n_servers: int) -> None:
        import math

        depth = max(1, round(math.log(n_servers, 3)))
        branching = [3] * depth
        # Adjust the last factor so the product is close to n_servers.
        tree = build_balanced(branching)
        run_willow(
            tree=tree,
            config=WillowConfig(),
            target_utilization=0.6,
            n_ticks=5,
            seed=seed,
        )

    timings = decision_time_scaling([9, 27, 81], build_and_plan, repeats=1)
    per_server = [t / n for n, t in timings]
    monotone_note = (
        "per-server time flat-ish (work O(n log n) total => O(log n) per "
        "decision level)"
    )
    rows.append(
        [
            "decision-time scaling",
            ", ".join(f"n={n}: {t * 1e3:.0f}ms" for n, t in timings),
            monotone_note,
        ]
    )

    return ExperimentResult(
        name="Sec. V-A -- convergence, complexity, stability properties",
        headers=headers,
        rows=rows,
        data={
            "message_bound_ok": bound_ok,
            "worst_messages": worst,
            "ping_pongs": ping_pongs,
            "min_residence": residence,
            "timings": timings,
            "per_server_seconds": per_server,
        },
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
