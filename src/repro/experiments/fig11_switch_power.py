"""Fig. 11 -- average power of the level-1 switches.

"We see that the average power demand is almost the same in all the
switches ... the fact that local migrations are preferred to non-local
migrations, evenly spreads out the traffic across all the switches."
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.experiments.common import ExperimentResult, PAPER_UTILIZATIONS
from repro.experiments.paper_sweep import run_sweep

__all__ = ["run", "main"]


def run(
    utilizations: Tuple[float, ...] = PAPER_UTILIZATIONS,
    n_ticks: int = 120,
    seed: int = 11,
) -> ExperimentResult:
    points = run_sweep(tuple(utilizations), n_ticks=n_ticks, seed=seed)
    n_switches = len(points[0].switch_power_l1)
    headers = ["U (%)"] + [f"sw{i}" for i in range(n_switches)] + ["spread (CV)"]
    rows = []
    spreads = []
    for point in points:
        powers = [point.switch_power_l1[k] for k in sorted(point.switch_power_l1)]
        cv = float(np.std(powers) / np.mean(powers)) if np.mean(powers) > 0 else 0.0
        spreads.append(cv)
        rows.append([point.utilization * 100, *powers, cv])
    return ExperimentResult(
        name="Fig. 11 -- power demand of level-1 switches",
        headers=headers,
        rows=rows,
        data={
            "utilizations": list(utilizations),
            "per_switch": [
                [p.switch_power_l1[k] for k in sorted(p.switch_power_l1)]
                for p in points
            ],
            "cv": spreads,
        },
        notes=(
            "expect: power rising with utilization and roughly equal "
            "across switches (low coefficient of variation)"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
