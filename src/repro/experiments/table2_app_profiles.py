"""Table II -- application power profiles.

The paper profiles three CPU-bound web applications by running each in
its own VM and measuring the increase in server power.  We reproduce
the profiling run: a single testbed server hosts one application at a
time; the reported increase is the wall-power delta over idle.
"""

from __future__ import annotations

from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.experiments.common import ExperimentResult
from repro.experiments.testbed_run import testbed_config
from repro.power.supply import constant_supply
from repro.topology.tree import NodeKind, Tree
from repro.workload.applications import TESTBED_APPS
from repro.workload.generator import PlacementPlan
from repro.workload.trace import DemandTrace, TraceDemandSource
from repro.workload.vm import VM

__all__ = ["run", "main"]


def _measure_app_power(app, config: WillowConfig, n_ticks: int = 12) -> float:
    """Wall-power increase from hosting one ``app`` VM on one server."""
    tree = Tree(root_name="profiling-rig", root_level=1)
    tree.add_child(tree.root, "server-under-test", NodeKind.SERVER)
    server_id = tree.servers()[0].node_id
    vm = VM(vm_id=0, app=app, host_id=server_id)
    placement = PlacementPlan(vms=[vm], scale=1.0)
    trace = DemandTrace.constant([app.mean_power], n_ticks=1)
    controller = WillowController(
        tree,
        config,
        constant_supply(500.0),
        placement,
        demand_source=TraceDemandSource(trace, placement.vms),
    )
    collector = controller.run(n_ticks)
    mean_power = collector.mean_server(server_id, "power")
    return mean_power - config.server_model.static_power


def run(n_ticks: int = 12) -> ExperimentResult:
    config = testbed_config(consolidation_enabled=False)
    headers = ["Application", "Increase in power consumption (W)", "rated (W)"]
    rows = []
    measured = {}
    for app in TESTBED_APPS:
        delta = _measure_app_power(app, config, n_ticks)
        measured[app.name] = delta
        rows.append([app.name, delta, app.mean_power])
    return ExperimentResult(
        name="Table II -- application power profile",
        headers=headers,
        rows=rows,
        data={"measured": measured},
        notes="paper: A1=8 W, A2=10 W, A3=15 W",
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
