"""Resilience sweep: QoS loss and thermal safety versus fault rate.

Beyond the paper.  The paper evaluates Willow on a healthy plant; this
sweep injects seeded physical faults -- server crashes, lying thermal
sensors, CRAC derates, branch-circuit trips -- at increasing rates
through :class:`~repro.plant_faults.controller.
FaultTolerantWillowController` and measures what degrades and what
holds.

Headline expectations, asserted in ``tests/test_plant_faults.py``:

* the rate-0 row is bit-identical to the ideal-plant controller (same
  seed, same randomness) -- the fault layer is a true no-op when
  nothing is scheduled;
* QoS loss (dropped demand) grows with the fault rate while served
  demand is rebalanced through evacuations and forced reallocations;
* **no configuration ever violates ``T_limit`` or produces a negative
  budget** -- graceful degradation, not open-loop drift.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import WillowConfig
from repro.core.events import MigrationCause
from repro.experiments.common import ExperimentResult
from repro.plant_faults.controller import run_resilient
from repro.plant_faults.schedule import random_plant_schedule
from repro.topology.builders import build_paper_simulation

__all__ = ["run", "main"]

FAULT_RATES = (0.0, 0.5, 1.0, 2.0)


def run(
    fault_rates: Sequence[float] = FAULT_RATES,
    n_ticks: int = 60,
    seed: int = 3,
    target_utilization: float = 0.6,
    outside_temp: float = 40.0,
) -> ExperimentResult:
    config = WillowConfig()
    t_limit = config.thermal.t_limit

    headers = [
        "fault rate",
        "crashes/sensor/cooling/trips",
        "dropped (W*ticks)",
        "QoS loss",
        "evacuations",
        "migrations",
        "quarantines",
        "worst T (C)",
        "T violations",
        "min budget (W)",
    ]
    rows = []
    sweep = {}
    for rate in fault_rates:
        tree = build_paper_simulation()
        schedule = random_plant_schedule(
            tree,
            seed=seed,
            horizon_ticks=n_ticks,
            n_crashes=round(3 * rate),
            n_sensor_faults=round(4 * rate),
            n_cooling_events=round(2 * rate),
            n_circuit_trips=round(1 * rate),
        )
        controller, collector = run_resilient(
            tree=tree,
            config=config,
            plant_faults=schedule,
            outside_temp=outside_temp,
            target_utilization=target_utilization,
            n_ticks=n_ticks,
            seed=seed,
        )
        dropped = collector.total_dropped_power()
        total_demand = sum(s.demand for s in collector.server_samples)
        qos_loss = dropped / total_demand if total_demand > 0 else 0.0
        worst_temp = max(s.temperature for s in collector.server_samples)
        min_budget = min(s.budget for s in collector.server_samples)
        violations = sum(
            s.thermal.violations for s in controller.servers.values()
        )
        counts = collector.plant_event_counts()
        rows.append(
            [
                f"{rate:.1f}",
                f"{len(schedule.crashes)}/{len(schedule.sensor_faults)}"
                f"/{len(schedule.cooling)}/{len(schedule.trips)}",
                f"{dropped:.0f}",
                f"{qos_loss:.1%}",
                collector.migration_count(MigrationCause.EVACUATION),
                collector.migration_count(),
                counts.get("sensor_quarantine", 0),
                f"{worst_temp:.1f}",
                violations,
                f"{min_budget:.1f}",
            ]
        )
        sweep[rate] = {
            "dropped": dropped,
            "qos_loss": qos_loss,
            "worst_temp": worst_temp,
            "violations": violations,
            "min_budget": min_budget,
            "events": counts,
            "evacuations": collector.migration_count(
                MigrationCause.EVACUATION
            ),
        }

    return ExperimentResult(
        name="Resilience (beyond the paper): fault rate vs QoS and safety",
        headers=headers,
        rows=rows,
        data={"sweep": sweep, "t_limit": t_limit},
        notes=(
            "Seeded physical faults through the sensor-fault-tolerant "
            "controller.  QoS degrades with the fault rate; the thermal "
            f"invariant (T <= {t_limit:.0f} C) and budget non-negativity "
            "must hold in every cell."
        ),
    )


def main() -> None:
    result = run()
    print(result.format())
    worst = max(cell["worst_temp"] for cell in result.data["sweep"].values())
    violations = sum(
        cell["violations"] for cell in result.data["sweep"].values()
    )
    safe = worst <= result.data["t_limit"] + 1e-6 and violations == 0
    print(
        f"thermal safety: {'OK' if safe else 'VIOLATED'} "
        f"(worst {worst:.2f} C, {violations} violations)"
    )


if __name__ == "__main__":
    main()
