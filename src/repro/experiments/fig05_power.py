"""Fig. 5 -- average server power vs utilization with a hot zone.

Servers 1-14 sit at 25 C ambient, servers 15-18 at 40 C.  The paper
reports: hot-zone servers consume much less (their thermal cap is
lower, so Willow moves work away); power rises with utilization but
hot-zone power saturates at the thermal limit.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.common import ExperimentResult, PAPER_UTILIZATIONS
from repro.experiments.paper_sweep import run_sweep

__all__ = ["run", "main"]


def run(
    utilizations: Tuple[float, ...] = PAPER_UTILIZATIONS,
    n_ticks: int = 120,
    seed: int = 11,
) -> ExperimentResult:
    points = run_sweep(tuple(utilizations), n_ticks=n_ticks, seed=seed)
    headers = ["U (%)", "cold mean (W)", "hot mean (W)"] + [
        f"s{i}" for i in range(1, 19)
    ]
    rows = []
    for point in points:
        rows.append(
            [
                point.utilization * 100,
                point.cold_mean_power,
                point.hot_mean_power,
                *point.mean_power,
            ]
        )
    return ExperimentResult(
        name="Fig. 5 -- average power consumption (Ta=25C s1-14, Ta=40C s15-18)",
        headers=headers,
        rows=rows,
        data={
            "utilizations": list(utilizations),
            "cold": [p.cold_mean_power for p in points],
            "hot": [p.hot_mean_power for p in points],
            "per_server": [p.mean_power for p in points],
        },
        notes=(
            "expect: hot zone below cold zone at every utilization; both "
            "rising with U; hot saturating at its ~300 W thermal cap"
        ),
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
