"""Generate a full evaluation report as one markdown document.

``python -m repro.experiments.report [output.md] [names...]`` runs the
selected experiments (default: all) and writes their tables plus notes
into a single file -- a regenerable EXPERIMENTS appendix.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable, Optional

from repro.experiments.common import ExperimentResult

__all__ = ["generate_report", "main"]


def _as_markdown(result: ExperimentResult) -> str:
    lines = [f"## {result.name}", ""]
    lines.append("| " + " | ".join(str(h) for h in result.headers) + " |")
    lines.append("|" + "---|" * len(result.headers))
    for row in result.rows:
        cells = [
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    lines.append("")
    return "\n".join(lines)


def generate_report(
    path,
    names: Optional[Iterable[str]] = None,
) -> Path:
    """Run experiments and write the combined markdown report.

    ``names`` selects experiments from the runner registry (default:
    every registered experiment, in registry order).
    """
    from repro.experiments.runner import REGISTRY

    names = list(names) if names is not None else list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")

    sections = [
        "# Willow -- regenerated evaluation report",
        "",
        "Produced by `python -m repro.experiments.report`.",
        "",
    ]
    for name in names:
        result = REGISTRY[name]()
        sections.append(_as_markdown(result))

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(sections))
    return path


def main(argv=None) -> int:  # pragma: no cover - console entry
    argv = list(sys.argv[1:] if argv is None else argv)
    output = Path(argv[0]) if argv else Path("evaluation_report.md")
    names = argv[1:] or None
    written = generate_report(output, names)
    print(f"wrote {written}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
