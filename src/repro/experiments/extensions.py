"""Extension experiments: the paper's Sec. VI future-work directions.

One summary table covering the four implemented extensions:

* multiple QoS classes (priority-aware degradation),
* per-component thermal envelopes (CPU/DIMM/NIC/disk),
* cooling-aware (holistic) budgets,
* UPS/battery supply buffering.

Each row reports the headline comparison its benchmark asserts.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]


def run(seed: int = 17) -> ExperimentResult:
    rows = []

    # -- QoS classes --------------------------------------------------------
    from repro.core import WillowConfig, WillowController
    from repro.power import step_supply
    from repro.qos import per_class_report, tiered_catalog
    from repro.sim import RandomStreams
    from repro.topology import build_paper_simulation
    from repro.workload import (
        SIMULATION_APPS,
        random_placement,
        scale_for_target_utilization,
    )

    tree = build_paper_simulation()
    config = WillowConfig()
    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in tree.servers()],
        tuple(tiered_catalog(SIMULATION_APPS)),
        streams["placement"],
        vms_per_server=6,
    )
    scale_for_target_utilization(placement, config.server_model.slope, 0.65)
    supply = step_supply([(0.0, 18 * 450.0), (30.0, 18 * 200.0)])
    controller = WillowController(tree, config, supply, placement, seed=seed)
    collector = controller.run(80)
    report = per_class_report(
        collector, controller.vms, scale=controller.placement.scale
    )
    qos_summary = ", ".join(
        f"{name} {report[name].loss_fraction:.0%}"
        for name in ("gold", "silver", "bronze")
    )
    rows.append(
        ["QoS classes", "loss under 45% brown-out", qos_summary]
    )

    # -- per-component thermal ------------------------------------------------
    from repro.devices import DeviceSet, STANDARD_DEVICES

    cold = DeviceSet(STANDARD_DEVICES, t_ambient=25.0)
    hot = DeviceSet(STANDARD_DEVICES, t_ambient=40.0)
    rows.append(
        [
            "component thermal",
            "binding component / server cap",
            f"25C: {cold.binding_device()}/{cold.server_cap():.0f}W, "
            f"40C: {hot.binding_device()}/{hot.server_cap():.0f}W",
        ]
    )

    # -- cooling-aware budgets -------------------------------------------------
    from repro.cooling import CoolingModel, effective_it_budget

    cooling = CoolingModel()
    feed = 18 * 450.0
    rows.append(
        [
            "cooling-aware budget",
            "IT budget from one facility feed",
            f"cool day (12C): {effective_it_budget(feed, cooling, 12.0):.0f}W, "
            f"hot day (35C): {effective_it_budget(feed, cooling, 35.0):.0f}W",
        ]
    )

    # -- UPS buffering ----------------------------------------------------------
    from repro.power import Battery, buffer_supply, step_supply as _step
    import numpy as np

    nominal = 18 * 450.0
    flapping = _step(
        [(float(4 * i), nominal if i % 2 == 0 else 0.55 * nominal) for i in range(15)]
    )
    battery = Battery(capacity=10_000.0, max_rate=nominal, efficiency=0.95)
    buffered = buffer_supply(flapping, battery, duration=60.0, horizon=12.0)
    times = np.arange(0.0, 60.0)
    raw_min = flapping.series(times).min()
    buffered_min = buffered.series(times).min()
    rows.append(
        [
            "UPS buffering",
            "worst-tick supply under flapping",
            f"raw {raw_min:.0f}W -> buffered {buffered_min:.0f}W",
        ]
    )

    # -- affinity-aware matching ------------------------------------------------
    from repro.workload.affinity import clustered_affinity

    def _affinity_variant(aware: bool) -> float:
        atree = build_paper_simulation()
        aconfig = WillowConfig(affinity_aware=aware)
        astreams = RandomStreams(seed + 20)
        aplacement = random_placement(
            [s.node_id for s in atree.servers()],
            SIMULATION_APPS,
            astreams["placement"],
        )
        scale_for_target_utilization(
            aplacement, aconfig.server_model.slope, 0.6
        )
        graph = clustered_affinity(aplacement.vms, cluster_size=4, in_rate=8.0)
        asupply = step_supply([(0.0, 18 * 450.0), (25.0, 0.75 * 18 * 450.0)])
        actrl = WillowController(
            atree, aconfig, asupply, aplacement, seed=seed + 20, ipc_graph=graph
        )
        actrl.run(70)
        return graph.colocated_fraction(actrl.vms)

    coloc_plain = _affinity_variant(False)
    coloc_aware = _affinity_variant(True)
    rows.append(
        [
            "affinity-aware matching",
            "IPC kept on-box after a squeeze",
            f"plain {coloc_plain:.0%} -> affinity-aware {coloc_aware:.0%}",
        ]
    )

    return ExperimentResult(
        name="Extensions -- Sec. VI future-work directions",
        headers=["extension", "measure", "result"],
        rows=rows,
        data={
            "qos_loss": {
                name: report[name].loss_fraction
                for name in ("gold", "silver", "bronze")
            },
            "hot_binding": hot.binding_device(),
            "hot_server_cap": hot.server_cap(),
            "buffered_min_supply": float(buffered_min),
            "raw_min_supply": float(raw_min),
            "colocated_plain": coloc_plain,
            "colocated_aware": coloc_aware,
        },
    )


def main() -> None:  # pragma: no cover - console entry
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
