"""Experiment harness: one module per paper figure/table.

Every module exposes ``run(**params) -> ExperimentResult`` (pure, no
printing) plus a ``main()`` that prints the result as the rows/series
the paper reports.  ``python -m repro.experiments.runner all`` runs the
whole evaluation.

Index (see DESIGN.md for the full mapping):

====================  =====================================================
Module                Reproduces
====================  =====================================================
fig04_thermal         Fig. 4  -- setting the simulation thermal constants
fig05_power           Fig. 5  -- avg server power vs utilization, hot/cold
fig06_temperature     Fig. 6  -- avg server temperature vs utilization
fig07_consolidation   Fig. 7  -- per-server consolidation power savings
fig09_migration_mix   Fig. 9  -- demand- vs consolidation-driven migrations
fig10_traffic         Fig. 10 -- normalised migration traffic vs utilization
fig11_switch_power    Fig. 11 -- level-1 switch power vs utilization
fig12_switch_cost     Fig. 12 -- migration cost in level-1 switches
table1_power_model    Table I -- utilization vs power (testbed model)
fig14_calibration     Fig. 14 -- experimental estimation of c1, c2
fig15_16_deficit      Figs. 15+16 -- supply plunge trace + migration bursts
fig17_18_temps        Figs. 17+18 -- testbed temperature series
fig19_table3          Fig. 19 + Table III -- consolidation savings (~27.5%)
table2_app_profiles   Table II -- application power profiles
properties            Sec. V-A -- convergence, messages, stability, scaling
====================  =====================================================
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
