"""The Sec. V-C experimental testbed, reconstructed in simulation.

Three ESX servers (A, B, C) under a two-level control hierarchy; the
real hardware and Extech power analyzer are replaced by the calibrated
linear power model (DESIGN.md documents the substitution):

* server power ``P(u) = 159.5 + 72.5 u`` W (``TESTBED_SERVER``),
  max ~232 W at 100 % CPU;
* thermal constants ``c1 = 0.2, c2 = 0.008`` (Sec. V-C2), window
  calibrated so a cool idle CPU presents its full 232 W -- equivalently
  ``T = 25 + 45 * (P / 232)`` deg C;
* applications A1/A2/A3 drawing 8/10/15 W (Table II);
* supply divided "proportionally between the servers" = equal split
  for identical machines (``allocation_mode="capacity"``).

Server workloads are deterministic VM mixes built from the Table II
catalog to hit target utilizations, so that migration activity is
attributable purely to supply events (the paper's stability story).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.metrics.collector import MetricsCollector
from repro.power.server import TESTBED_SERVER
from repro.power.supply import SupplyTrace
from repro.power.switch import SwitchPowerModel
from repro.thermal.model import ThermalParams
from repro.topology.builders import build_testbed
from repro.topology.tree import Tree
from repro.workload.applications import TESTBED_APPS, AppType
from repro.workload.generator import PlacementPlan
from repro.workload.trace import DemandTrace, TraceDemandSource
from repro.workload.vm import VM

__all__ = [
    "TESTBED_SWITCH",
    "testbed_config",
    "build_workload",
    "run_testbed",
    "mix_for_utilization",
]

#: Small edge switch serving the 3-server cluster.
TESTBED_SWITCH = SwitchPowerModel(
    static_power=2.0, watts_per_unit_traffic=0.05, capacity=220.0
)

#: CPU thermal constants measured in Sec. V-C2.
TESTBED_THERMAL = ThermalParams(c1=0.2, c2=0.008, t_ambient=25.0, t_limit=70.0)


def testbed_config(**overrides) -> WillowConfig:
    """The testbed's control configuration.

    Small margins/costs match the testbed's watt scale (whole servers
    draw ~160-232 W; VMs draw 8-15 W).
    """
    defaults = dict(
        server_model=TESTBED_SERVER,
        switch_model=TESTBED_SWITCH,
        thermal=TESTBED_THERMAL,
        circuit_limit=TESTBED_SERVER.max_power,
        allocation_mode="capacity",
        p_min=2.0,
        migration_cost_power=1.0,
        migration_cost_ticks=1,
        consolidation_threshold=0.23,
        wake_latency_ticks=2,
        alpha=0.7,
    )
    defaults.update(overrides)
    return WillowConfig(**defaults)


def mix_for_utilization(target: float) -> List[AppType]:
    """A Table-II application mix whose demand approximates a target
    utilization of the testbed server's 72.5 W dynamic range.

    Small dynamic program over app-power sums (8/10/15 W granularity)
    choosing the achievable total closest to the target, so testbed
    scenarios land within a few watts of their nominal utilizations.
    """
    if not 0.0 <= target <= 1.0:
        raise ValueError(f"target must be in [0, 1], got {target}")
    budget = target * TESTBED_SERVER.slope
    if budget <= 0:
        return []
    limit = int(budget) + 16  # allow slight overshoot
    # best[s] = mix reaching integer sum s (app powers are integers).
    best: Dict[int, List[AppType]] = {0: []}
    frontier = [0]
    while frontier:
        new_frontier = []
        for total in frontier:
            for app in TESTBED_APPS:
                nxt = total + int(app.mean_power)
                if nxt <= limit and nxt not in best:
                    best[nxt] = best[total] + [app]
                    new_frontier.append(nxt)
        frontier = new_frontier
    achievable = min(best, key=lambda s: (abs(s - budget), s))
    return list(best[achievable])


def build_workload(
    tree: Tree, utilizations: Sequence[float]
) -> Tuple[PlacementPlan, DemandTrace]:
    """Deterministic VM placement hitting per-server utilizations.

    Returns the placement and a single-row demand trace (constant
    demands equal to each application's rated draw).
    """
    servers = tree.servers()
    if len(utilizations) != len(servers):
        raise ValueError(
            f"need one utilization per server ({len(servers)}), got "
            f"{len(utilizations)}"
        )
    vms: List[VM] = []
    demands: List[float] = []
    for server, utilization in zip(servers, utilizations):
        for app in mix_for_utilization(utilization):
            vms.append(VM(vm_id=len(vms), app=app, host_id=server.node_id))
            demands.append(app.mean_power)
    placement = PlacementPlan(vms=vms, scale=1.0)
    trace = DemandTrace.constant(demands, n_ticks=1)
    return placement, trace


class SineDemandSource:
    """Smooth deterministic per-VM demand variation.

    Each VM's demand oscillates around its rated draw with a slow
    sinusoid and a per-VM phase: ``d(t) = rated * (1 + a*sin(2*pi*(t /
    period + phase)))``.  This models the testbed's continuously
    fluctuating web workloads without randomness, so migration activity
    stays attributable to supply events.
    """

    def __init__(
        self,
        vms: List[VM],
        *,
        amplitude: float = 0.10,
        period: float = 40.0,
        host_phases: Dict[int, float] | None = None,
    ):
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.vms = list(vms)
        self.amplitude = amplitude
        self.period = period
        self.host_phases = dict(host_phases or {})
        self._tick = 0

    def sample_tick(self) -> Dict[int, float]:
        per_host: Dict[int, float] = {}
        for index, vm in enumerate(self.vms):
            # Per-host phase (load peaks rotate between servers, as in
            # the testbed's independent web workloads) plus a small
            # per-VM stagger so VMs on one host are not fully locked.
            phase = self.host_phases.get(
                vm.host_id, index / max(len(self.vms), 1)
            ) + 0.02 * index
            factor = 1.0 + self.amplitude * np.sin(
                2.0 * np.pi * (self._tick / self.period + phase)
            )
            vm.current_demand = vm.app.mean_power * factor
            per_host[vm.host_id] = (
                per_host.get(vm.host_id, 0.0) + vm.current_demand
            )
        self._tick += 1
        return per_host


def run_testbed(
    supply: SupplyTrace,
    utilizations: Sequence[float],
    *,
    n_ticks: int,
    config: WillowConfig | None = None,
    seed: int = 0,
    demand_amplitude: float = 0.0,
    demand_period: float = 40.0,
    host_phases: Sequence[float] | None = None,
) -> Tuple[WillowController, MetricsCollector]:
    """Build and run one testbed scenario.

    ``demand_amplitude > 0`` switches from constant demands to the
    sine-varying source (used by the Fig. 15/16 deficit runs);
    ``host_phases`` gives servers A/B/C their sine phases.
    """
    tree = build_testbed()
    config = config or testbed_config()
    placement, trace = build_workload(tree, utilizations)
    if demand_amplitude > 0.0:
        phase_map = None
        if host_phases is not None:
            servers = tree.servers()
            if len(host_phases) != len(servers):
                raise ValueError("need one phase per server")
            phase_map = {
                s.node_id: float(p) for s, p in zip(servers, host_phases)
            }
        source = SineDemandSource(
            placement.vms,
            amplitude=demand_amplitude,
            period=demand_period,
            host_phases=phase_map,
        )
    else:
        source = TraceDemandSource(trace, placement.vms)
    controller = WillowController(
        tree,
        config,
        supply,
        placement,
        demand_source=source,
        seed=seed,
    )
    collector = controller.run(n_ticks)
    return controller, collector


def server_util_series(
    controller: WillowController, collector: MetricsCollector
) -> Dict[str, np.ndarray]:
    """Utilization time series keyed by server name (A, B, C)."""
    result = {}
    for name in ("server-A", "server-B", "server-C"):
        node = controller.tree.by_name(name)
        result[name] = collector.server_series(node.node_id, "utilization")
    return result
