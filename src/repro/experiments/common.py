"""Shared experiment infrastructure.

:class:`ExperimentResult` is the uniform return type: a named table
(headers + rows) for human consumption plus a raw ``data`` dict that
tests and benchmarks assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.power.battery import BatterySpec

__all__ = [
    "ExperimentResult",
    "hot_zone_overrides",
    "battery_override",
    "set_battery_override",
    "PAPER_UTILIZATIONS",
    "HOT_SERVER_NAMES",
    "COLD_SERVER_NAMES",
]

#: Utilization sweep used throughout Sec. V-B (fractions of capacity).
PAPER_UTILIZATIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: Paper's hot zone: servers 15-18 at 40 C ambient (Sec. V-B3).
HOT_SERVER_NAMES = tuple(f"server-{i}" for i in range(15, 19))
COLD_SERVER_NAMES = tuple(f"server-{i}" for i in range(1, 15))


def hot_zone_overrides(t_hot: float = 40.0) -> Dict[str, float]:
    """Ambient override map for the Fig. 5-7 hot/cold zone split."""
    return {name: t_hot for name in HOT_SERVER_NAMES}


#: Runner-installed UPS override (``--battery CAPACITY[:RATE]``).
#: Experiments that model energy storage (the federation sweep) replace
#: their default battery axis with this spec when it is set.
_BATTERY_OVERRIDE: Optional[BatterySpec] = None


def set_battery_override(spec: Optional[BatterySpec]) -> None:
    """Install (or clear, with ``None``) the runner's battery spec."""
    global _BATTERY_OVERRIDE
    _BATTERY_OVERRIDE = spec


def battery_override() -> Optional[BatterySpec]:
    """The battery spec the runner installed, if any."""
    return _BATTERY_OVERRIDE


@dataclass
class ExperimentResult:
    """One reproduced figure/table.

    Attributes
    ----------
    name:
        Paper label, e.g. ``"Fig. 5"``.
    headers / rows:
        The printable table.
    data:
        Raw values (arrays, dicts) for programmatic assertions.
    notes:
        Reproduction caveats worth printing alongside the table.
    """

    name: str
    headers: List[str]
    rows: List[Sequence[Any]]
    data: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def format(self) -> str:
        """Render as a fixed-width ASCII table."""
        columns = [str(h) for h in self.headers]
        body = [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(columns[i]), *(len(r[i]) for r in body)) if body else len(columns[i])
            for i in range(len(columns))
        ]
        lines = [self.name]
        lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.format())
        print()


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
