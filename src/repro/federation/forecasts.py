"""Supply forecast models for the federation layer.

The predictive planner (PR 9) read *perfect* forecasts straight from
each site's :class:`~repro.power.supply.SupplyTrace` -- segment-exact
``mean_between`` averages of the delivered supply.  Real operators do
not have that luxury; the ROADMAP asks how the MPC win degrades with
forecast error.  This module puts the answer behind one small
interface:

* :class:`OracleForecast` -- the PR 9 behaviour, bit-exact (the
  default on :class:`~repro.federation.coordinator.FederationConfig`).
* :class:`PersistenceForecast` -- the classic naive forecaster: every
  future period looks like the last observation.
* :class:`NoisyOracleForecast` -- the oracle plus i.i.d. Gaussian
  error per future step (sigma in watts).
* :class:`AR1Forecast` -- the oracle plus an AR(1) error process
  (autocorrelation ``rho``, stationary deviation ``sigma``): errors
  that *persist* across the lookahead window, the realistic failure
  mode for cloud-cover misforecasts.

Models only predict the *future* periods ``k >= 1``; period 0 -- the
window starting now -- is always the exact segment mean, because the
coordinator observes it.  Noise is a pure function of
``(seed, site name, decision time, step)``: re-evaluating a forecast
at the same decision point returns the same floats, so forecasts are
idempotent within a tick, deterministic across runs, and need no state
in checkpoints.

The coordinator turns the raw per-period supplies into
:class:`~repro.federation.predictive.SiteForecast` records (subtracting
any standing cooling overhead and clamping at zero), so every consumer
-- the predictive planner, the gym environment's observations
(:mod:`repro.gym`) -- sees the same interface whatever the model.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

__all__ = [
    "ForecastModel",
    "OracleForecast",
    "PersistenceForecast",
    "NoisyOracleForecast",
    "AR1Forecast",
    "FORECAST_MODELS",
    "resolve_forecast_model",
]


def _site_rng(seed: int, site: str, t_index: int) -> np.random.Generator:
    """A fresh generator keyed on (seed, site, decision index).

    Mirrors :class:`~repro.sim.rng.RandomStreams`' name-digest
    derivation so two sites (or two decision points) can never share a
    stream, while a *re*-evaluation at the same point replays the same
    draws.
    """
    name = site.encode("utf-8")
    digest = np.frombuffer(
        name + b"\x00" * (4 - len(name) % 4 or 4), dtype=np.uint8
    )
    entropy = [int(seed), int(t_index), *digest.tolist()]
    return np.random.default_rng(np.random.SeedSequence(entropy))


class ForecastModel:
    """Base class: exact current period, model-defined future periods.

    Subclasses override :meth:`future_supplies`; :meth:`supplies`
    assembles the full ``(current, *future)`` tuple the coordinator
    consumes.  ``name`` is the registry slug.
    """

    name = "oracle"

    def supplies(
        self, site, now: float, horizon: int, step: float
    ) -> Tuple[float, ...]:
        """Per-period mean delivered supply, ``horizon + 1`` entries."""
        current = site.delivered_supply.mean_between(now, now + step)
        if horizon <= 0:
            return (current,)
        return (current,) + self.future_supplies(site, now, horizon, step)

    def future_supplies(
        self, site, now: float, horizon: int, step: float
    ) -> Tuple[float, ...]:
        raise NotImplementedError

    def _oracle(
        self, site, now: float, horizon: int, step: float
    ) -> Tuple[float, ...]:
        return tuple(
            site.delivered_supply.mean_between(
                now + k * step, now + (k + 1) * step
            )
            for k in range(1, horizon + 1)
        )


class OracleForecast(ForecastModel):
    """Perfect lookahead: segment-exact means of the actual trace."""

    name = "oracle"

    def future_supplies(self, site, now, horizon, step):
        return self._oracle(site, now, horizon, step)


class PersistenceForecast(ForecastModel):
    """Tomorrow looks like right now: repeat the last observation."""

    name = "persistence"

    def future_supplies(self, site, now, horizon, step):
        last = site.delivered_supply.at(now)
        return (last,) * horizon


class NoisyOracleForecast(ForecastModel):
    """The oracle plus i.i.d. Gaussian error (``sigma`` watts) per step."""

    name = "noisy-oracle"

    def __init__(self, sigma: float, seed: int = 0):
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = float(sigma)
        self.seed = int(seed)

    def future_supplies(self, site, now, horizon, step):
        exact = self._oracle(site, now, horizon, step)
        rng = _site_rng(self.seed, site.name, int(round(now / step)))
        noise = rng.normal(0.0, self.sigma, size=horizon)
        return tuple(max(s + n, 0.0) for s, n in zip(exact, noise))


class AR1Forecast(ForecastModel):
    """The oracle plus an AR(1) error process across the window.

    ``e_k = rho * e_{k-1} + sigma * sqrt(1 - rho^2) * z_k`` with
    ``e_0 = 0`` (the current period is observed): errors build up with
    lead time and stay correlated across the horizon, so a planner that
    trusts step 1 is systematically wrong about step K the same way.
    """

    name = "ar1"

    def __init__(self, rho: float, sigma: float, seed: int = 0):
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.rho = float(rho)
        self.sigma = float(sigma)
        self.seed = int(seed)

    def future_supplies(self, site, now, horizon, step):
        exact = self._oracle(site, now, horizon, step)
        rng = _site_rng(self.seed, site.name, int(round(now / step)))
        innovation = self.sigma * np.sqrt(1.0 - self.rho**2)
        error = 0.0
        out = []
        for supply in exact:
            error = self.rho * error + innovation * rng.normal()
            out.append(max(supply + error, 0.0))
        return tuple(out)


#: Slug -> constructor; parameterised slugs are parsed by
#: :func:`resolve_forecast_model`.
FORECAST_MODELS = {
    "oracle": OracleForecast,
    "persistence": PersistenceForecast,
    "noisy-oracle": NoisyOracleForecast,
    "ar1": AR1Forecast,
}


def resolve_forecast_model(
    spec: Union[str, ForecastModel, None],
) -> ForecastModel:
    """Turn a config value into a model instance.

    Accepts a ready model, ``None`` (oracle), or a spec string::

        oracle
        persistence
        noisy-oracle:SIGMA[:SEED]
        ar1:RHO:SIGMA[:SEED]
    """
    if spec is None:
        return OracleForecast()
    if isinstance(spec, ForecastModel):
        return spec
    parts = str(spec).split(":")
    name, args = parts[0], parts[1:]
    if name not in FORECAST_MODELS:
        raise ValueError(
            f"unknown forecast model {name!r}; "
            f"choose from {sorted(FORECAST_MODELS)}"
        )
    try:
        if name in ("oracle", "persistence"):
            if args:
                raise ValueError(f"{name} takes no parameters")
            return FORECAST_MODELS[name]()
        if name == "noisy-oracle":
            if not 1 <= len(args) <= 2:
                raise ValueError("expected noisy-oracle:SIGMA[:SEED]")
            return NoisyOracleForecast(
                float(args[0]), int(args[1]) if len(args) > 1 else 0
            )
        if not 2 <= len(args) <= 3:
            raise ValueError("expected ar1:RHO:SIGMA[:SEED]")
        return AR1Forecast(
            float(args[0]),
            float(args[1]),
            int(args[2]) if len(args) > 2 else 0,
        )
    except ValueError as error:
        raise ValueError(f"forecast model {spec!r}: {error}") from None
