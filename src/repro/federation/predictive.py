"""Receding-horizon (MPC) federation control with cooling as an actuator.

The shipped federation policies are myopic: they react to the current
:class:`~repro.federation.policies.SiteStatus` snapshot, and cooling
only ever appears as a *fault* (a CRAC derate).  This module adds the
predictive layer the ROADMAP calls for, in the spirit of Abera & Chen's
joint compute/cooling optimization and Van Damme et al.'s thermal-aware
optimal control (PAPERS.md), grafted onto Willow's proportional
budget-division core:

* :func:`predictive_policy` -- a K-step receding-horizon planner.  At
  every supply period it reads each site's forecast window (segment-
  exact :meth:`~repro.power.supply.SupplyTrace.mean_between` averages
  of the *delivered*, post-UPS supply), the battery plan's state of
  charge, and the WAN migration cost, and solves a small LP-shaped
  greedy waterfall over the horizon:

  - **donor screening over the whole window** -- a site only donates
    headroom it keeps at *every* step of the horizon, so load is never
    parked somewhere the forecast says will dim (the myopic policies'
    ping-pong moves, each paying WAN cost twice);
  - **pre-emptive shedding** -- a site whose forecast shows a deficit
    ahead ships load out *before* the crunch (while both ends have
    slack), but only when the discounted predicted-drop energy exceeds
    the WAN energy of at least one move -- the explicit trade of WAN
    cost now against predicted deficits later.

  ``horizon=0`` degrades *exactly* to
  :func:`~repro.federation.policies.proportional` (pinned by test).

* :class:`CoolingSetpoint` / :class:`CoolingControl` -- cooling
  promoted from disturbance to actuator.  The planner raises a
  deficit site's supply-air setpoint (cheaper cooling -> more IT watts
  from the same facility feed, at the price of lower Eq. 3 thermal
  caps) and restores it on recovery; the modeled cooling-plant
  overhead is charged against the site budget through
  :class:`ActuatedSupply`, and setpoint changes compose with any
  in-progress CRAC-derate ramp (see
  ``FaultTolerantWillowController.set_base_ambient``).

* :class:`PredictivePlanner` -- the stateful wrapper the coordinator
  drives: it carries the last plan (per-site per-step predicted
  deficits, for trace frames) and the standing setpoints, and
  round-trips through ``snapshot_state()``/``restore_state()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cooling.model import CoolingModel
from repro.federation.policies import (
    SiteStatus,
    Transfer,
    proportional,
    _EPS,
)

__all__ = [
    "SiteForecast",
    "CoolingSetpoint",
    "CoolingControl",
    "ActuatedSupply",
    "predictive_policy",
    "PredictivePlanner",
]


@dataclass(frozen=True)
class SiteForecast:
    """One site's K-step lookahead, as the planner sees it.

    ``supplies[k]`` is the segment-exact mean delivered (post-UPS,
    post-cooling-overhead) supply over future supply period ``k``;
    ``supplies[0]`` covers the period starting now.  ``battery_charge``
    is the UPS plan's state of charge (W*ticks) at the window start and
    ``battery_rate`` its discharge limit (W); both are 0 for sites
    without a battery.
    """

    name: str
    supplies: Tuple[float, ...]
    battery_charge: float = 0.0
    battery_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.supplies:
            raise ValueError("forecast needs at least the current period")
        if any(s < 0 for s in self.supplies):
            raise ValueError("forecast supplies must be non-negative")
        if self.battery_charge < 0 or self.battery_rate < 0:
            raise ValueError("battery charge/rate must be non-negative")


@dataclass(frozen=True)
class CoolingSetpoint:
    """A directive to move ``site``'s supply-air setpoint (deg C)."""

    site: str
    base_ambient: float

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("setpoint site must be non-empty")
        if not -20.0 < self.base_ambient < 60.0:
            raise ValueError(
                f"setpoint {self.base_ambient} is outside any plausible "
                "supply-air range"
            )


@dataclass(frozen=True)
class CoolingControl:
    """Cooling-actuation tunables for a federation.

    Attributes
    ----------
    model:
        The :class:`CoolingModel` translating setpoints into COP.
    outside_temp:
        Outside air temperature (deg C) the chiller works against.
    nominal_setpoint:
        Supply-air temperature every site starts (and recovers) at.
    max_setpoint:
        Ceiling the planner may raise a deficit site's setpoint to.
    charge_overhead:
        Charge the modeled cooling-plant power against each site's
        budget (through :class:`ActuatedSupply`).  Applies to *every*
        site uniformly, whatever the policy, so policy comparisons under
        cooling accounting stay apples-to-apples.
    """

    model: CoolingModel = field(default_factory=CoolingModel)
    outside_temp: float = 30.0
    nominal_setpoint: float = 25.0
    max_setpoint: float = 32.0
    charge_overhead: bool = True

    def __post_init__(self) -> None:
        if self.max_setpoint < self.nominal_setpoint:
            raise ValueError(
                "max_setpoint must be >= nominal_setpoint, got "
                f"{self.max_setpoint} < {self.nominal_setpoint}"
            )

    def overhead_power(self, it_power: float, setpoint: float) -> float:
        """Cooling-plant watts charged against a site budget."""
        return self.model.setpoint_cooling_power(
            max(it_power, 0.0),
            setpoint,
            self.outside_temp,
            reference=self.nominal_setpoint,
        )


class ActuatedSupply:
    """A delivered supply minus the live cooling-plant overhead.

    Controllers only ever call ``supply.at(now)``, so this thin wrapper
    is all it takes to charge the cooling plant against the site
    budget; the coordinator updates :attr:`overhead` on the supply
    cadence (smoothed IT demand over the COP at the standing setpoint).
    """

    def __init__(self, inner):
        self.inner = inner
        self.overhead = 0.0

    def at(self, time: float) -> float:
        return max(self.inner.at(time) - self.overhead, 0.0)


def _drain(
    needy: str,
    want: float,
    donatable: Dict[str, float],
    transfers: List[Transfer],
    *,
    preemptive: bool,
) -> None:
    """One proportional waterfall step: spread ``want`` over donors."""
    total = sum(donatable.values())
    if total <= _EPS:
        return
    take = min(want, total)
    shares = {name: room / total for name, room in sorted(donatable.items())}
    for name, share in shares.items():
        watts = min(take * share, donatable[name])
        if watts <= _EPS:
            continue
        transfers.append(
            Transfer(src=needy, dst=name, watts=watts, preemptive=preemptive)
        )
        donatable[name] -= watts


def predictive_policy(
    statuses: Sequence[SiteStatus],
    *,
    margin: float = 0.0,
    horizon: int = 0,
    forecasts: Optional[Sequence[SiteForecast]] = None,
    discount: float = 0.6,
    step: float = 1.0,
    wan_break_even: float = 0.0,
    plan: Optional[Dict[str, Tuple[float, ...]]] = None,
) -> List[Transfer]:
    """The K-step receding-horizon waterfall.

    Parameters beyond the common policy signature:

    ``horizon``
        Lookahead steps K (supply periods).  0 delegates to
        :func:`proportional` verbatim -- same transfers, same floats.
    ``forecasts``
        One :class:`SiteForecast` per site (any order).  ``None`` also
        degrades to proportional.
    ``discount``
        Per-step geometric discount on predicted deficits (model
        confidence decays with lead time).
    ``step``
        Length of one supply period in simulation time units (converts
        predicted deficit watts into energies).
    ``wan_break_even``
        Energy of one WAN move (W*time units, both end servers).  A
        pre-emptive shed is only worth taking when the discounted
        predicted-drop energy it avoids exceeds this.
    ``plan``
        Optional out-parameter: filled with each site's per-step
        predicted deficit vector ``(d_0 .. d_K)`` for tracing.

    When ``plan`` is given it is filled even for sites that end up
    needing nothing -- the trace shows the planner *considered* them.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if not 0.0 < discount <= 1.0:
        raise ValueError(f"discount must be in (0, 1], got {discount}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if horizon == 0 or not forecasts:
        return proportional(statuses, margin=margin)

    by_name = {f.name: f for f in forecasts}
    missing = [s.name for s in statuses if s.name not in by_name]
    if missing:
        raise ValueError(f"no forecast for site(s) {missing}")

    donatable: Dict[str, float] = {}
    urgent: List[SiteStatus] = []
    #: (discounted worst predicted deficit, name, watts to pre-shift)
    preshift: List[Tuple[float, str]] = []
    preshift_watts: Dict[str, float] = {}

    for status in statuses:
        forecast = by_name[status.name]
        demand = status.smoothed_demand
        steps = min(horizon, len(forecast.supplies) - 1)
        future_headroom = [
            forecast.supplies[k] - demand for k in range(1, steps + 1)
        ]
        future_deficits = [max(-h, 0.0) for h in future_headroom]
        if plan is not None:
            plan[status.name] = tuple([status.deficit] + future_deficits)

        if status.deficit > _EPS:
            # The WAN break-even gate applies to reactive shifts too:
            # a deficit whose drop energy over the whole window is
            # smaller than one move's WAN energy is cheaper to drop
            # than to ship (the WAN cost is itself demand charged to
            # both end servers, and at a deficit site it drops).
            energy = status.deficit * step + sum(
                discount ** (k + 1) * d * step
                for k, d in enumerate(future_deficits)
            )
            if energy >= wan_break_even - _EPS:
                urgent.append(status)
            continue
        floor = min([status.headroom] + future_headroom)
        room = floor - margin
        if room > _EPS:
            donatable[status.name] = room
            continue
        if not any(d > _EPS for d in future_deficits):
            continue
        # Predicted crunch at a currently-healthy site: worth shipping
        # load out early only if the discounted avoided-drop energy
        # beats the WAN energy of a move.  The battery plan's remaining
        # charge is subtracted first -- delivered supply is already
        # post-UPS, so this is a deliberate extra conservatism: never
        # pre-pay WAN cost for a dip the UPS might still carry.
        energy = sum(
            discount ** (k + 1) * d * step
            for k, d in enumerate(future_deficits)
        )
        if energy < wan_break_even - _EPS:
            continue
        relief = min(
            forecast.battery_rate,
            forecast.battery_charge / step,
        )
        urgency, watts = max(
            (discount ** (k + 1) * d, d)
            for k, d in enumerate(future_deficits)
        )
        watts -= relief
        if watts > _EPS:
            preshift.append((urgency, status.name))
            preshift_watts[status.name] = watts

    transfers: List[Transfer] = []
    # Current deficits first (they are dropping demand *now*), worst
    # first -- the proportional rule against horizon-screened donors.
    for needy in sorted(urgent, key=lambda s: (-s.deficit, s.name)):
        _drain(
            needy.name,
            min(needy.deficit, sum(donatable.values())),
            donatable,
            transfers,
            preemptive=False,
        )
    # Then the pre-emptive shifts, most imminent crunch first.
    for _urgency, name in sorted(preshift, key=lambda p: (-p[0], p[1])):
        _drain(
            name,
            preshift_watts[name],
            donatable,
            transfers,
            preemptive=True,
        )
    return transfers


class PredictivePlanner:
    """The coordinator-side stateful wrapper around the policy.

    Holds the horizon configuration, the last computed plan (per-site
    per-step predicted deficits -- what the tracer's planner frames
    show), and the standing cooling setpoints.  All of it round-trips
    through :meth:`state_dict`/:meth:`load_state_dict` so a
    checkpointed predictive federation resumes bit-exactly.
    """

    def __init__(
        self,
        *,
        horizon: int,
        discount: float = 0.6,
        policy=None,
    ):
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if not 0.0 < discount <= 1.0:
            raise ValueError(f"discount must be in (0, 1], got {discount}")
        self.horizon = horizon
        self.discount = discount
        #: The forecast-aware policy this planner drives.  ``None``
        #: keeps :func:`predictive_policy`; a learned policy registered
        #: with ``forecast_aware=True`` (see :mod:`repro.gym.agents`)
        #: receives the identical planner signature.
        self.policy = policy if policy is not None else predictive_policy
        #: Last rebalance's per-site predicted deficit vectors.
        self.last_plan: Dict[str, Tuple[float, ...]] = {}
        #: Standing supply-air setpoint per site (cooling control only).
        self.setpoints: Dict[str, float] = {}
        self.rebalances = 0

    def plan(
        self,
        statuses: Sequence[SiteStatus],
        forecasts: Sequence[SiteForecast],
        *,
        margin: float,
        step: float,
        wan_break_even: float,
        cooling: Optional[CoolingControl] = None,
    ) -> Tuple[List[Transfer], List[CoolingSetpoint]]:
        """One receding-horizon decision: transfers plus setpoints."""
        plan: Dict[str, Tuple[float, ...]] = {}
        transfers = self.policy(
            statuses,
            margin=margin,
            horizon=self.horizon,
            forecasts=forecasts,
            discount=self.discount,
            step=step,
            wan_break_even=wan_break_even,
            plan=plan,
        )
        self.last_plan = plan
        self.rebalances += 1
        setpoints: List[CoolingSetpoint] = []
        if cooling is not None and self.horizon > 0:
            for status in statuses:
                deficits = plan.get(status.name, (status.deficit,))
                # Raise the setpoint into a (predicted) crunch, restore
                # it once the window ahead is clear: warmer supply air
                # trades thermal-cap headroom for IT watts exactly when
                # the watts are the binding constraint.
                crunch = deficits[0] > _EPS or (
                    len(deficits) > 1 and deficits[1] > _EPS
                )
                target = (
                    cooling.max_setpoint if crunch else cooling.nominal_setpoint
                )
                standing = self.setpoints.get(
                    status.name, cooling.nominal_setpoint
                )
                if abs(target - standing) > 1e-12:
                    setpoints.append(
                        CoolingSetpoint(site=status.name, base_ambient=target)
                    )
                self.setpoints[status.name] = target
        return transfers, setpoints

    # --------------------------------------------------- checkpoint state
    def state_dict(self) -> Dict:
        return {
            "horizon": self.horizon,
            "discount": self.discount,
            "last_plan": dict(self.last_plan),
            "setpoints": dict(self.setpoints),
            "rebalances": self.rebalances,
        }

    def load_state_dict(self, state: Dict) -> None:
        if state["horizon"] != self.horizon:
            raise ValueError(
                f"snapshot horizon {state['horizon']} does not match "
                f"this planner's {self.horizon}"
            )
        self.discount = state["discount"]
        self.last_plan = dict(state["last_plan"])
        self.setpoints = dict(state["setpoints"])
        self.rebalances = state["rebalances"]
