"""One data center inside a geo-federation.

A :class:`Site` wraps everything Willow already knows how to run for a
single facility -- a PMU :class:`~repro.topology.tree.Tree`, a
:class:`~repro.power.supply.SupplyTrace`, optionally a
:class:`~repro.power.battery.Battery` UPS buffer and a
:class:`~repro.plant_faults.schedule.PlantFaultSchedule` -- plus the
grid-side signals the federation policies consume: a carbon-intensity
trace and an energy-price trace.

The federation layer is one level *up* from the paper's hierarchy: a
data-center PMU becomes a child of a grid-level coordinator, exactly as
Fig. 1 composes.  Sites therefore stay fully self-contained Willow
instances; the coordinator only moves VM load between them on the
supply cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.metrics.collector import MetricsCollector
from repro.power.battery import Battery, buffer_supply_with_plan
from repro.power.supply import SupplyTrace, constant_supply
from repro.sim.rng import RandomStreams
from repro.topology.tree import Tree
from repro.trace.tracer import NULL_TRACER
from repro.workload.applications import SIMULATION_APPS
from repro.workload.generator import (
    random_placement,
    scale_for_target_utilization,
)

__all__ = ["SiteSpec", "Site", "build_site"]


@dataclass
class SiteSpec:
    """Declarative description of one federated site.

    Attributes
    ----------
    name:
        Unique site label (appears in summaries and trace events).
    supply:
        The site's raw grid/renewable supply trace.  ``None`` defaults
        to a constant trace at the fleet circuit capacity.
    battery:
        Optional UPS buffer; when given, the supply the controller sees
        is ``buffer_supply(supply, battery)`` over the run horizon.
    plant_faults:
        Optional physical-fault schedule; a non-empty schedule selects
        the sensor-fault-tolerant controller for this site.
    carbon:
        Carbon-intensity signal (gCO2/kWh, any consistent unit); used
        by the ``greedy-greenest`` policy.  Defaults to a constant 1.
    price:
        Energy-price signal ($/MWh, any consistent unit); used by the
        ``price-aware`` policy.  Defaults to a constant 1.
    tree / config:
        The Willow hierarchy and tunables; default to the paper's
        18-server simulation setup.
    target_utilization / vms_per_server / seed:
        Workload knobs, mirroring :func:`repro.core.controller.run_willow`.
    ambient_overrides:
        Per-server ambient map for hot/cold zones inside the site.
    vectorized:
        Run the site on the array-based
        :class:`~repro.core.vectorized.VectorizedWillowController`.
        Silently ignored for sites the vectorized tick cannot model
        faithfully (a non-empty plant-fault schedule needs the
        ``_server_cap``/``_advance_plant`` hooks, and device-class
        thermal state is object-shaped): those keep their scalar
        controller, exactly as the batched federation expects.
    """

    name: str
    supply: Optional[SupplyTrace] = None
    battery: Optional[Battery] = None
    plant_faults: Optional[object] = None  # PlantFaultSchedule
    carbon: Optional[SupplyTrace] = None
    price: Optional[SupplyTrace] = None
    tree: Optional[Tree] = None
    config: Optional[WillowConfig] = None
    target_utilization: float = 0.5
    vms_per_server: int = 4
    seed: int = 0
    apps: tuple = SIMULATION_APPS
    ambient_overrides: Optional[Mapping[str, float]] = None
    vectorized: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                "target_utilization must be in (0, 1], got "
                f"{self.target_utilization}"
            )


@dataclass
class Site:
    """A built, runnable site: spec + controller + its grid signals."""

    spec: SiteSpec
    controller: WillowController
    #: The supply the controller actually sees (battery-buffered when
    #: the spec carries a UPS).
    delivered_supply: SupplyTrace
    carbon: SupplyTrace
    price: SupplyTrace
    #: The UPS charge plan over the run (W*ticks vs time); ``None``
    #: without a battery.  The predictive planner reads it.
    battery_plan: Optional[SupplyTrace] = None
    #: The UPS discharge limit (W); 0 without a battery.
    battery_rate: float = 0.0
    #: Cooling actuation, installed by the coordinator when the
    #: federation config enables it: the overhead-charging supply
    #: wrapper and the standing supply-air setpoint.
    actuated_supply: Optional[object] = None  # ActuatedSupply
    setpoint: Optional[float] = None
    #: Cross-site bookkeeping, filled by the coordinator.
    vms_received: int = 0
    vms_sent: int = 0
    watts_received: float = 0.0
    watts_sent: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def collector(self) -> MetricsCollector:
        return self.controller.collector

    @property
    def config(self) -> WillowConfig:
        return self.controller.config

    # -- federation-facing state ------------------------------------------
    def smoothed_demand(self) -> float:
        """The site root's Eq. 4 smoothed demand (wall watts)."""
        root = self.controller.tree.root
        return self.controller.internals[root.node_id].smoothed_demand

    def supply_at(self, now: float) -> float:
        """Delivered (post-UPS, post-cooling-overhead) supply at ``now``."""
        if self.actuated_supply is not None:
            return self.actuated_supply.at(now)
        return self.delivered_supply.at(now)

    def battery_charge_at(self, now: float) -> float:
        """Planned UPS state of charge (W*ticks) at ``now``; 0 without
        a battery."""
        if self.battery_plan is None:
            return 0.0
        return self.battery_plan.at(now)

    # -- cooling actuation ------------------------------------------------
    def install_cooling(self, control) -> None:
        """Wire the cooling actuator in: wrap the controller's supply in
        an overhead-charging :class:`ActuatedSupply` and start at the
        nominal setpoint.  Called once by the coordinator."""
        from repro.federation.predictive import ActuatedSupply

        self.actuated_supply = ActuatedSupply(self.delivered_supply)
        self.controller.supply = self.actuated_supply
        self.setpoint = control.nominal_setpoint

    def apply_setpoint(self, value: float) -> None:
        """Move every rack's supply-air temperature to ``value``.

        The fault-tolerant controller routes through its
        ``set_base_ambient`` so an in-progress CRAC-derate ramp keeps
        composing with the new base; plain controllers set the ambient
        directly (their next eta1 allocation -- the same tick, since
        rebalances ride the supply cadence -- re-derives the Eq. 3
        caps).
        """
        self.setpoint = value
        controller = self.controller
        set_base = getattr(controller, "set_base_ambient", None)
        if set_base is not None:
            set_base(value)
            return
        for sid in sorted(controller.servers):
            server = controller.servers[sid]
            ceiling = server.thermal_params.t_limit - 2.0
            target = min(value, ceiling)
            if abs(target - server.thermal_params.t_ambient) > 1e-12:
                server.set_ambient(target)

    def headroom(self, now: float) -> float:
        """Supply minus smoothed demand; negative means a deficit."""
        return self.supply_at(now) - self.smoothed_demand()

    def carbon_at(self, now: float) -> float:
        return self.carbon.at(now)

    def price_at(self, now: float) -> float:
        return self.price.at(now)

def build_site(
    spec: SiteSpec,
    *,
    n_ticks: int,
    vm_id_offset: int = 0,
    tracer=None,
) -> Site:
    """Instantiate the controller (and workload) for one site.

    ``vm_id_offset`` renumbers the site's VMs so ids are unique across
    the federation (VM objects travel between controllers).  Offset 0 --
    always the first site -- leaves ids untouched, which is what keeps a
    single-site federation bit-exact with the scalar controller: the
    per-VM demand streams are keyed by VM id.
    """
    from repro.topology.builders import build_paper_simulation

    tree = spec.tree or build_paper_simulation()
    config = spec.config or WillowConfig()
    servers = tree.servers()
    raw_supply = spec.supply or constant_supply(
        len(servers) * config.circuit_limit
    )
    delivered = raw_supply
    battery_plan = None
    battery_rate = 0.0
    if spec.battery is not None:
        delivered, battery_plan = buffer_supply_with_plan(
            raw_supply,
            spec.battery,
            duration=max(n_ticks * config.delta_d, config.delta_d),
            dt=config.delta_d,
        )
        battery_rate = spec.battery.max_rate

    streams = RandomStreams(spec.seed)
    placement = random_placement(
        [s.node_id for s in servers],
        spec.apps,
        streams["placement"],
        vms_per_server=spec.vms_per_server,
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, spec.target_utilization
    )
    if vm_id_offset:
        for vm in placement.vms:
            vm.vm_id += vm_id_offset

    kwargs = dict(
        ambient_overrides=spec.ambient_overrides,
        seed=spec.seed,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    schedule = spec.plant_faults
    if schedule is not None and not schedule.empty:
        from repro.plant_faults.controller import FaultTolerantWillowController

        controller = FaultTolerantWillowController(
            tree, config, delivered, placement,
            plant_faults=schedule, **kwargs
        )
    elif spec.vectorized and config.device_classes is None:
        from repro.core.vectorized import VectorizedWillowController

        controller = VectorizedWillowController(
            tree, config, delivered, placement, **kwargs
        )
    else:
        controller = WillowController(
            tree, config, delivered, placement, **kwargs
        )

    return Site(
        spec=spec,
        controller=controller,
        delivered_supply=delivered,
        carbon=spec.carbon or constant_supply(1.0),
        price=spec.price or constant_supply(1.0),
        battery_plan=battery_plan,
        battery_rate=battery_rate,
    )
