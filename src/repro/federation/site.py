"""One data center inside a geo-federation.

A :class:`Site` wraps everything Willow already knows how to run for a
single facility -- a PMU :class:`~repro.topology.tree.Tree`, a
:class:`~repro.power.supply.SupplyTrace`, optionally a
:class:`~repro.power.battery.Battery` UPS buffer and a
:class:`~repro.plant_faults.schedule.PlantFaultSchedule` -- plus the
grid-side signals the federation policies consume: a carbon-intensity
trace and an energy-price trace.

The federation layer is one level *up* from the paper's hierarchy: a
data-center PMU becomes a child of a grid-level coordinator, exactly as
Fig. 1 composes.  Sites therefore stay fully self-contained Willow
instances; the coordinator only moves VM load between them on the
supply cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.metrics.collector import MetricsCollector
from repro.power.battery import Battery, buffer_supply
from repro.power.supply import SupplyTrace, constant_supply
from repro.sim.rng import RandomStreams
from repro.topology.tree import Tree
from repro.trace.tracer import NULL_TRACER
from repro.workload.applications import SIMULATION_APPS
from repro.workload.generator import (
    random_placement,
    scale_for_target_utilization,
)

__all__ = ["SiteSpec", "Site", "build_site"]


@dataclass
class SiteSpec:
    """Declarative description of one federated site.

    Attributes
    ----------
    name:
        Unique site label (appears in summaries and trace events).
    supply:
        The site's raw grid/renewable supply trace.  ``None`` defaults
        to a constant trace at the fleet circuit capacity.
    battery:
        Optional UPS buffer; when given, the supply the controller sees
        is ``buffer_supply(supply, battery)`` over the run horizon.
    plant_faults:
        Optional physical-fault schedule; a non-empty schedule selects
        the sensor-fault-tolerant controller for this site.
    carbon:
        Carbon-intensity signal (gCO2/kWh, any consistent unit); used
        by the ``greedy-greenest`` policy.  Defaults to a constant 1.
    price:
        Energy-price signal ($/MWh, any consistent unit); used by the
        ``price-aware`` policy.  Defaults to a constant 1.
    tree / config:
        The Willow hierarchy and tunables; default to the paper's
        18-server simulation setup.
    target_utilization / vms_per_server / seed:
        Workload knobs, mirroring :func:`repro.core.controller.run_willow`.
    ambient_overrides:
        Per-server ambient map for hot/cold zones inside the site.
    vectorized:
        Run the site on the array-based
        :class:`~repro.core.vectorized.VectorizedWillowController`.
        Silently ignored for sites the vectorized tick cannot model
        faithfully (a non-empty plant-fault schedule needs the
        ``_server_cap``/``_advance_plant`` hooks, and device-class
        thermal state is object-shaped): those keep their scalar
        controller, exactly as the batched federation expects.
    """

    name: str
    supply: Optional[SupplyTrace] = None
    battery: Optional[Battery] = None
    plant_faults: Optional[object] = None  # PlantFaultSchedule
    carbon: Optional[SupplyTrace] = None
    price: Optional[SupplyTrace] = None
    tree: Optional[Tree] = None
    config: Optional[WillowConfig] = None
    target_utilization: float = 0.5
    vms_per_server: int = 4
    seed: int = 0
    apps: tuple = SIMULATION_APPS
    ambient_overrides: Optional[Mapping[str, float]] = None
    vectorized: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                "target_utilization must be in (0, 1], got "
                f"{self.target_utilization}"
            )


@dataclass
class Site:
    """A built, runnable site: spec + controller + its grid signals."""

    spec: SiteSpec
    controller: WillowController
    #: The supply the controller actually sees (battery-buffered when
    #: the spec carries a UPS).
    delivered_supply: SupplyTrace
    carbon: SupplyTrace
    price: SupplyTrace
    #: Cross-site bookkeeping, filled by the coordinator.
    vms_received: int = 0
    vms_sent: int = 0
    watts_received: float = 0.0
    watts_sent: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def collector(self) -> MetricsCollector:
        return self.controller.collector

    @property
    def config(self) -> WillowConfig:
        return self.controller.config

    # -- federation-facing state ------------------------------------------
    def smoothed_demand(self) -> float:
        """The site root's Eq. 4 smoothed demand (wall watts)."""
        root = self.controller.tree.root
        return self.controller.internals[root.node_id].smoothed_demand

    def supply_at(self, now: float) -> float:
        """Delivered (post-UPS) supply in force at ``now``."""
        return self.delivered_supply.at(now)

    def headroom(self, now: float) -> float:
        """Supply minus smoothed demand; negative means a deficit."""
        return self.supply_at(now) - self.smoothed_demand()

    def carbon_at(self, now: float) -> float:
        return self.carbon.at(now)

    def price_at(self, now: float) -> float:
        return self.price.at(now)

def build_site(
    spec: SiteSpec,
    *,
    n_ticks: int,
    vm_id_offset: int = 0,
    tracer=None,
) -> Site:
    """Instantiate the controller (and workload) for one site.

    ``vm_id_offset`` renumbers the site's VMs so ids are unique across
    the federation (VM objects travel between controllers).  Offset 0 --
    always the first site -- leaves ids untouched, which is what keeps a
    single-site federation bit-exact with the scalar controller: the
    per-VM demand streams are keyed by VM id.
    """
    from repro.topology.builders import build_paper_simulation

    tree = spec.tree or build_paper_simulation()
    config = spec.config or WillowConfig()
    servers = tree.servers()
    raw_supply = spec.supply or constant_supply(
        len(servers) * config.circuit_limit
    )
    delivered = raw_supply
    if spec.battery is not None:
        delivered = buffer_supply(
            raw_supply,
            spec.battery,
            duration=max(n_ticks * config.delta_d, config.delta_d),
            dt=config.delta_d,
        )

    streams = RandomStreams(spec.seed)
    placement = random_placement(
        [s.node_id for s in servers],
        spec.apps,
        streams["placement"],
        vms_per_server=spec.vms_per_server,
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, spec.target_utilization
    )
    if vm_id_offset:
        for vm in placement.vms:
            vm.vm_id += vm_id_offset

    kwargs = dict(
        ambient_overrides=spec.ambient_overrides,
        seed=spec.seed,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    schedule = spec.plant_faults
    if schedule is not None and not schedule.empty:
        from repro.plant_faults.controller import FaultTolerantWillowController

        controller = FaultTolerantWillowController(
            tree, config, delivered, placement,
            plant_faults=schedule, **kwargs
        )
    elif spec.vectorized and config.device_classes is None:
        from repro.core.vectorized import VectorizedWillowController

        controller = VectorizedWillowController(
            tree, config, delivered, placement, **kwargs
        )
    else:
        controller = WillowController(
            tree, config, delivered, placement, **kwargs
        )

    return Site(
        spec=spec,
        controller=controller,
        delivered_supply=delivered,
        carbon=spec.carbon or constant_supply(1.0),
        price=spec.price or constant_supply(1.0),
    )
