"""Geo-federated Willow: several sites run as one system.

The federation layer composes the paper's hierarchy one level up
(Fig. 1): each member :class:`Site` is a complete Willow instance with
its own supply trace, optional battery buffer, optional plant-fault
schedule and grid signals; the :class:`FederationCoordinator` runs them
tick-locked and shifts VM load between them on the supply cadence under
a pluggable policy.  See ``docs/federation.md``.
"""

from repro.federation.coordinator import (
    CrossSiteMigration,
    FederationConfig,
    FederationCoordinator,
    build_federation,
    run_federation,
)
from repro.federation.vectorized import BatchedFederationCoordinator
from repro.federation.forecasts import (
    AR1Forecast,
    FORECAST_MODELS,
    ForecastModel,
    NoisyOracleForecast,
    OracleForecast,
    PersistenceForecast,
    resolve_forecast_model,
)
from repro.federation.policies import (
    POLICIES,
    SiteStatus,
    Transfer,
    as_policy,
    greedy_greenest,
    neutral,
    policy,
    predictive,
    price_aware,
    proportional,
    register_policy,
    unregister_policy,
)
from repro.federation.predictive import (
    ActuatedSupply,
    CoolingControl,
    CoolingSetpoint,
    PredictivePlanner,
    SiteForecast,
    predictive_policy,
)
from repro.federation.site import Site, SiteSpec, build_site

__all__ = [
    "Site",
    "SiteSpec",
    "build_site",
    "FederationConfig",
    "FederationCoordinator",
    "BatchedFederationCoordinator",
    "CrossSiteMigration",
    "build_federation",
    "run_federation",
    "POLICIES",
    "SiteStatus",
    "Transfer",
    "policy",
    "register_policy",
    "unregister_policy",
    "as_policy",
    "neutral",
    "proportional",
    "greedy_greenest",
    "price_aware",
    "predictive",
    "predictive_policy",
    "PredictivePlanner",
    "SiteForecast",
    "CoolingControl",
    "CoolingSetpoint",
    "ActuatedSupply",
    "ForecastModel",
    "OracleForecast",
    "PersistenceForecast",
    "NoisyOracleForecast",
    "AR1Forecast",
    "FORECAST_MODELS",
    "resolve_forecast_model",
]
