"""Federation-wide vectorization: every site's tick in one array sweep.

:class:`BatchedFederationCoordinator` runs the same control system as
:class:`~repro.federation.coordinator.FederationCoordinator` -- same
policies, same FFDLR rebalance, same per-site Willow semantics -- but
batches the per-tick hot path of all sites into one
:class:`~repro.core.fleet.FederationFleet` struct-of-arrays block:

* **One block, level-at-a-time.**  Demand sampling, the Eq. 4 smoothing
  sweep, the Eq. 2/3 thermal step, serving, and the full Sec. IV-D
  budget waterfall run as array expressions spanning *every tree of
  every site at once* (tree levels of different sites concatenate into
  one fold/one ``allocate_level`` call per level, switch reserves fold
  over one shared power array).
* **Segments.**  Sites the array tick cannot model faithfully (a
  non-empty plant-fault schedule, device-class thermal state, a
  non-generator demand source) keep their scalar controller and tick
  scalar at their position; the remaining sites form maximal runs of
  consecutive array-capable sites ("segments") that tick fused.
* **Deferred scatter.**  The arrays are the truth; per-server and
  per-VM Python objects are refreshed *lazily*, only at the points
  scalar code actually reads them (the migration planner, the
  consolidation pass, priority serving, the federation rebalance) and
  at the end of the run.  Per-sample metrics dataclasses are queued as
  per-tick column blocks (:class:`~repro.metrics.columnar.LazyList`)
  and only materialised if somebody reads them.  Steady-state ticks
  touch no per-server Python objects at all.
* **Bit-exact staleness.**  The scalar coordinator ticks sites in list
  order, so a VM hosted at site ``s`` but *homed* at a later site ``h``
  is served against last tick's demand (its home generator has not run
  yet).  The fused tick samples all segment sites up front, eagerly
  refreshes only exported guests (their host sites read the objects),
  then restores the stale value onto exactly those late-pair VM objects
  and re-applies the fresh sample when the segment tick ends --
  decisions match the scalar coordinator's to the bit.
* **Array rebalance.**  The Sec. IV-E shed / FFDLR-repack candidate
  search runs on the block arrays (:mod:`repro.binpack.prescreen`):
  masks and exact-key argsorts pick donors and receivers, a verified
  cumsum prefix picks each server's largest-first takes, and only the
  chosen moves are realised through the scalar packer.

Equivalence contract (enforced by tests/test_federation_vectorized.py):
identical decisions and float trajectories to the scalar
``FederationCoordinator`` under every policy, with batteries, plant
faults and WAN migration costs in play -- bit-exact until the first
migration reorders a demand sum, ``rtol=1e-12`` after.

When any *site* tracer is enabled the fused tick falls back to
site-major per-site vectorized ticks (each already bit-exact under
tracing), so :class:`~repro.trace.tracer.Tracer` frames are identical
to the scalar coordinator's.  The coordinator-level tracer (site
grants, federation migrations) works in either mode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.binpack.items import Bin, Item
from repro.binpack.prescreen import (
    deficient_order,
    destination_order,
    shed_takes,
    shed_vm_order,
)
from repro.core.deficits import power_imbalance
from repro.core.events import ControlMessage, Drop, MigrationCause
from repro.core.fleet import (
    FederationFleet,
    build_fold_index,
    fold_segment_sums,
)
from repro.core.state import SleepState
from repro.core.vectorized import (
    VectorizedWillowController,
    _SERVE_MARGIN,
)
from repro.federation.coordinator import FederationCoordinator, _EPS
from repro.federation.site import Site
from repro.metrics.collector import ServerSample, SwitchSample
from repro.metrics.columnar import LazyList
from repro.power.budget import LevelIndex, allocate_level
from repro.thermal.model import temperature_step_arrays
from repro.workload.generator import DemandGenerator

__all__ = ["BatchedFederationCoordinator"]


# ------------------------------------------------------------ lazy blocks
def _server_block(now, ids, wall, temps, util, raw, budget, awake):
    """Materialiser for one site's per-tick server samples."""

    def build():
        w = wall.tolist()
        t = temps.tolist()
        u = util.tolist()
        r = raw.tolist()
        b = budget.tolist()
        a = awake.tolist()
        return [
            ServerSample(now, ids[j], w[j], t[j], u[j], r[j], b[j], not a[j])
            for j in range(len(ids))
        ]

    return build


def _switch_block(now, ids, levels, base, mig, power):
    """Materialiser for one site's per-tick switch samples."""

    def build():
        b = base.tolist()
        m = mig.tolist()
        p = power.tolist()
        return [
            SwitchSample(now, ids[j], levels[j], b[j], m[j], p[j])
            for j in range(len(ids))
        ]

    return build


def _message_block(now, ids, upward):
    """Materialiser for one site's per-tick control messages."""
    return lambda: [ControlMessage(now, c, upward) for c in ids]


class _SegLevel:
    """One tree level, concatenated across every site of a segment."""

    __slots__ = (
        "parts",
        "node_gidx",
        "child_gidx",
        "pad_idx",
        "valid",
        "alloc_index",
        "reserve_sources",
        "reserve_rows",
        "reserve_pad",
        "reserve_valid",
        "capacity_mode",
        "capacity_mask",
    )

    def __init__(self, parts: List[Tuple[object, object]], node_offsets):
        # parts: [(controller, per-site _LevelSpec)] in segment order.
        self.parts = parts
        node_ids = []
        child_ids = []
        sizes = []
        offsets = []
        reserve_sources = []
        mask_pieces = []
        child_base = 0
        for ctrl, spec in parts:
            off = node_offsets[ctrl]
            node_ids.append(off + spec.node_ids)
            child_ids.append(off + spec.child_ids)
            sizes.append(np.diff(np.append(spec.offsets, len(spec.child_ids))))
            offsets.append(spec.offsets + child_base)
            child_base += len(spec.child_ids)
            for switches in spec.site_switches:
                reserve_sources.append((ctrl, switches))
            mask_pieces.append(
                np.full(
                    len(spec.child_ids),
                    ctrl.config.allocation_mode == "capacity",
                )
            )
        self.node_gidx = np.concatenate(node_ids)
        self.child_gidx = np.concatenate(child_ids)
        all_sizes = np.concatenate(sizes).astype(np.intp)
        self.pad_idx, self.valid = build_fold_index(all_sizes)
        self.alloc_index = LevelIndex(
            np.concatenate(offsets).astype(np.intp), child_base
        )
        self.reserve_sources = reserve_sources
        mask = np.concatenate(mask_pieces)
        if mask.all() or not mask.any():
            self.capacity_mode = bool(mask[0]) if len(mask) else False
            self.capacity_mask = None
        else:
            self.capacity_mode = False
            self.capacity_mask = mask


class _Segment:
    """A maximal run of consecutive array-capable sites, ticked fused."""

    def __init__(
        self,
        coordinator: "BatchedFederationCoordinator",
        entries: List[Tuple[VectorizedWillowController, int, slice]],
    ):
        self.coordinator = coordinator
        self.controllers = [ctrl for ctrl, _idx, _sl in entries]
        self.global_idx = [idx for _ctrl, idx, _sl in entries]
        self._seg_pos = {idx: pos for pos, idx in enumerate(self.global_idx)}

        fed = coordinator.fed_fleet
        start = entries[0][2].start
        stop = entries[-1][2].stop
        sl = slice(start, stop)
        sizes = [ctrl.fleet.n for ctrl in self.controllers]
        self.n = stop - start
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        self.local_slices = [
            slice(int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(sizes))
        ]
        self.row_site = np.repeat(np.arange(len(sizes)), sizes)
        self.row_base = bounds[:-1]

        # Block views over the shared federation arrays (basic slices,
        # so per-site code keeps seeing the same memory).
        for name in (
            "static_power",
            "standby_power",
            "slope",
            "t_ambient",
            "t_limit",
            "c1",
            "c2",
            "decay_tick",
            "decay_window",
            "awake",
            "asleep",
            "waking",
            "mig_cost",
            "budget",
            "temperature",
            "raw",
            "served",
        ):
            setattr(self, name, getattr(fed, name)[sl])
        self.values = fed.smoother_values[sl]
        self.primed = fed.smoother_primed[sl]
        self.alpha = fed.alpha[sl]

        # Federation-level node buffers: each site's node-id space maps
        # to [offset, offset + site._n_nodes).
        self.node_offsets: Dict[object, int] = {}
        total = 0
        for ctrl in self.controllers:
            self.node_offsets[ctrl] = total
            total += ctrl._n_nodes
        self._caps_buf = np.zeros(total)
        self._budget_buf = np.zeros(total)
        self._demand_buf = np.zeros(total)
        self._served_buf = np.zeros(total)
        self._vm_sums = np.zeros(self.n)
        self.server_gidx = np.concatenate(
            [
                self.node_offsets[ctrl] + ctrl.fleet.node_ids
                for ctrl in self.controllers
            ]
        )
        self.root_entries = [
            (
                ctrl,
                self.node_offsets[ctrl] + ctrl.tree.root.node_id,
                ctrl.internals[ctrl.tree.root.node_id],
            )
            for ctrl in self.controllers
        ]

        # Tree levels grouped by height: one fold / one allocate_level
        # call spans every site that has that level.
        max_level = max(ctrl.tree.root.level for ctrl in self.controllers)
        self.levels = [
            _SegLevel(
                [
                    (ctrl, ctrl._levels_up[level - 1])
                    for ctrl in self.controllers
                    if level <= ctrl.tree.root.level
                ],
                self.node_offsets,
            )
            for level in range(1, max_level + 1)
        ]

        modes = {ctrl.config.thermal_mode for ctrl in self.controllers}
        self.thermal_mode = modes.pop() if len(modes) == 1 else None
        caps = [ctrl.fleet.window_caps for ctrl in self.controllers]
        self._static_caps = (
            np.concatenate(caps) if all(c is not None for c in caps) else None
        )

        # --- switch power as one shared array -------------------------
        # The allocation reserves and the per-tick switch recording read
        # and write this array; the per-site ``_last_switch_power``
        # dicts are flushed from it only at scalar sync points.
        self._sw_slices: List[slice] = []
        self._sw_meta: List[Tuple[list, list]] = []
        sw_site_gidx = []
        sw_red = []
        sw_static = []
        sw_wpu = []
        sw_power = []
        sw_offsets: Dict[object, int] = {}
        base_off = 0
        for ctrl in self.controllers:
            switches = ctrl._switch_list
            sw_offsets[ctrl] = base_off
            self._sw_slices.append(
                slice(base_off, base_off + len(switches))
            )
            base_off += len(switches)
            self._sw_meta.append(
                (
                    [s.switch_id for s in switches],
                    [s.level for s in switches],
                )
            )
            sw_site_gidx.append(
                self.node_offsets[ctrl] + ctrl._switch_site_ids
            )
            sw_red.append(ctrl._switch_redundancy)
            model = ctrl.config.switch_model
            sw_static.append(np.full(len(switches), model.static_power))
            sw_wpu.append(
                np.full(len(switches), model.watts_per_unit_traffic)
            )
            sw_power.append(
                np.fromiter(
                    (
                        ctrl._last_switch_power[s.switch_id]
                        for s in switches
                    ),
                    float,
                    len(switches),
                )
            )
        self._sw_site_gidx = np.concatenate(sw_site_gidx)
        self._sw_red = np.concatenate(sw_red)
        self._sw_static = np.concatenate(sw_static)
        self._sw_wpu = np.concatenate(sw_wpu)
        self._switch_power = np.concatenate(sw_power)
        self._switch_dict_stale = False
        self._sw_pos = [
            {
                switch_id: sw_offsets[ctrl] + pos
                for switch_id, pos in ctrl._switch_pos.items()
            }
            for ctrl in self.controllers
        ]
        # Reserve fold: per level, each node's switch rows in the same
        # left-to-right order the scalar ``sum()`` walks them.
        for level in self.levels:
            rows: List[int] = []
            rsizes: List[int] = []
            for ctrl, switches in level.reserve_sources:
                rsizes.append(len(switches))
                off = sw_offsets[ctrl]
                pos = ctrl._switch_pos
                rows.extend(off + pos[s.switch_id] for s in switches)
            level.reserve_rows = np.asarray(rows, dtype=np.intp)
            level.reserve_pad, level.reserve_valid = build_fold_index(
                np.asarray(rsizes, dtype=np.intp)
            )

        # --- deferred-scatter bookkeeping -----------------------------
        k = len(self.controllers)
        self._dirty_servers = [False] * k
        self._dirty_vms = [False] * k
        self._cost_watch = [True] * k
        self._demands: List[Optional[np.ndarray]] = [None] * k
        self._plan_vms = [
            list(ctrl.placement.vms) for ctrl in self.controllers
        ]
        self._peak = np.fromiter(
            (
                s.thermal.peak
                for ctrl in self.controllers
                for s in ctrl.fleet.servers
            ),
            float,
            self.n,
        )
        self._viol = np.fromiter(
            (
                s.thermal.violations
                for ctrl in self.controllers
                for s in ctrl.fleet.servers
            ),
            np.int64,
            self.n,
        )
        # Per-site control-message id tuples, in the exact per-site
        # emission order (levels ascending for demand reports, levels
        # descending for budget grants).
        self._up_ids = [
            tuple(
                c
                for spec in ctrl._levels_up
                for c in spec.child_id_list
            )
            for ctrl in self.controllers
        ]
        self._down_ids = [
            tuple(
                c
                for spec in reversed(ctrl._levels_up)
                for c in spec.child_id_list
            )
            for ctrl in self.controllers
        ]
        # Sample/message lists become lazily-materialised column stores.
        for ctrl in self.controllers:
            collector = ctrl.collector
            if not isinstance(collector.server_samples, LazyList):
                collector.server_samples = LazyList(
                    collector.server_samples
                )
            if not isinstance(collector.switch_samples, LazyList):
                collector.switch_samples = LazyList(
                    collector.switch_samples
                )
            if not isinstance(collector.messages, LazyList):
                collector.messages = LazyList(collector.messages)

    # ---------------------------------------------------------------- gates
    def tracing_active(self) -> bool:
        return any(ctrl.tracer.enabled for ctrl in self.controllers)

    def _late_pairs(self) -> list:
        """Foreign VM objects whose *home* site sits later in this
        segment than their host: the scalar coordinator would serve
        them against last tick's demand."""
        home_of = self.coordinator._vm_home
        if home_of is None:
            return []
        out = []
        for pos, ctrl in enumerate(self.controllers):
            if not ctrl._foreign_vms:
                continue
            for vm_id, vm in ctrl._foreign_vms.items():
                h_pos = self._seg_pos.get(home_of.get(vm_id, -1))
                if h_pos is not None and h_pos > pos:
                    out.append(vm)
        return out

    # --------------------------------------------------------------- sync
    def _flush_servers(self, i: int) -> None:
        """Scatter site ``i``'s array state back onto its runtimes.

        Position-independent: the block arrays always hold exactly the
        values an eager tick would have written to the objects by the
        same point, so scalar readers (planner, consolidation, gather)
        see identical state.
        """
        if not self._dirty_servers[i]:
            return
        self._dirty_servers[i] = False
        sl = self.local_slices[i]
        raw = self.raw[sl].tolist()
        smoothed = self.values[sl].tolist()
        served = self.served[sl].tolist()
        temps = self.temperature[sl].tolist()
        peaks = self._peak[sl].tolist()
        violations = self._viol[sl].tolist()
        for j, server in enumerate(self.controllers[i].fleet.servers):
            server.raw_demand = raw[j]
            server.smoothed_demand = smoothed[j]
            server.smoother._value = smoothed[j]
            server.served_power = served[j]
            thermal = server.thermal
            thermal.temperature = temps[j]
            thermal.peak = peaks[j]
            thermal.violations = violations[j]

    def _flush_vms(self, i: int) -> None:
        """Write site ``i``'s home-VM demand objects from the last
        sample.  Exported guests are skipped: they were refreshed
        eagerly at sample time and may carry a deliberate stale value
        (late-pair staleness) that must survive the flush."""
        if not self._dirty_vms[i]:
            return
        self._dirty_vms[i] = False
        demands = self._demands[i]
        if demands is None:
            return
        ctrl = self.controllers[i]
        values = demands.tolist()
        vms = self._plan_vms[i]
        if ctrl._away_count:
            away = ctrl._vm_away.tolist()
            for r, vm in enumerate(vms):
                if not away[r]:
                    vm.current_demand = values[r]
        else:
            for vm, value in zip(vms, values):
                vm.current_demand = value

    def _flush_switch_dict(self) -> None:
        if not self._switch_dict_stale:
            return
        self._switch_dict_stale = False
        power = self._switch_power.tolist()
        for i, ctrl in enumerate(self.controllers):
            last = ctrl._last_switch_power
            sl = self._sw_slices[i]
            for switch_id, value in zip(
                self._sw_meta[i][0], power[sl.start : sl.stop]
            ):
                last[switch_id] = value

    def flush(self) -> None:
        """Make every runtime object current (end of run / fallback)."""
        for i in range(len(self.controllers)):
            self._flush_servers(i)
            self._flush_vms(i)
        self._flush_switch_dict()

    def sync_site(self, i: int) -> None:
        """Refresh one site's objects for an external scalar reader."""
        self._flush_servers(i)
        self._flush_vms(i)

    def _adopt_object_state(self) -> None:
        """Re-adopt object state after per-site scalar ticks ran.

        The per-site fleets alias the federation block, so the float
        arrays are already current; only the deferral side-cars (peak,
        violations, switch powers) need re-reading.
        """
        self._peak = np.fromiter(
            (
                s.thermal.peak
                for ctrl in self.controllers
                for s in ctrl.fleet.servers
            ),
            float,
            self.n,
        )
        self._viol = np.fromiter(
            (
                s.thermal.violations
                for ctrl in self.controllers
                for s in ctrl.fleet.servers
            ),
            np.int64,
            self.n,
        )
        self._switch_power = np.concatenate(
            [
                np.fromiter(
                    (
                        ctrl._last_switch_power[s.switch_id]
                        for s in ctrl._switch_list
                    ),
                    float,
                    len(ctrl._switch_list),
                )
                for ctrl in self.controllers
            ]
        )
        self._switch_dict_stale = False
        for i in range(len(self.controllers)):
            self._dirty_servers[i] = False
            self._dirty_vms[i] = False
            self._demands[i] = None
            self._cost_watch[i] = True

    def scalar_tick(self) -> None:
        """Site-major fallback (tracing): flush, tick each site's own
        vectorized tick, and re-adopt the object state."""
        self.flush()
        for ctrl in self.controllers:
            ctrl._tick()
        self._adopt_object_state()

    def note_cost_activity(self, i: int) -> None:
        """A migration cost was charged on site ``i``'s servers."""
        self._cost_watch[i] = True

    # ----------------------------------------------------------------- tick
    def tick(self, now: float) -> None:
        ctrls = self.controllers

        # 0. housekeeping: sparse scans instead of per-server loops.
        # Sleep transitions come straight off the block's awake lanes;
        # pending migration costs are watched per site (the watch is
        # armed by every path that charges a cost and disarmed when a
        # scan finds nothing left).
        for i, ctrl in enumerate(ctrls):
            ctrl._tick_migration_traffic = {}
            fleet = ctrl.fleet
            if self._cost_watch[i]:
                costs_dirty = False
                pending_left = False
                for server in fleet.servers:
                    if server._pending_costs:
                        server.expire_costs()
                        costs_dirty = True
                        if server._pending_costs:
                            pending_left = True
                if costs_dirty:
                    fleet.gather_costs()
                self._cost_watch[i] = pending_left
            sl = self.local_slices[i]
            if not bool(self.awake[sl].all()):
                servers = fleet.servers
                for r in np.nonzero(~self.awake[sl])[0].tolist():
                    servers[r].tick_wake()
                fleet.gather_sleep()
            ctrl._begin_tick(now)

        # 1. sample every site's demand in site order.  The arrays stay
        # authoritative; only exported guests (read as objects by their
        # host sites) are refreshed eagerly, and late-pair guests get
        # the stale value back (their home generator would not have run
        # yet under site-major execution).
        late = self._late_pairs()
        stale_vals = [vm.current_demand for vm in late]
        demands: List[Optional[np.ndarray]] = []
        for i, ctrl in enumerate(ctrls):
            sample = ctrl._sample_vm_demands(write_objects=False)
            demands.append(sample)
            self._demands[i] = sample
            self._dirty_vms[i] = sample is not None
            if sample is not None and ctrl._away_count:
                vms = self._plan_vms[i]
                rows = np.nonzero(ctrl._vm_away)[0]
                for r, value in zip(
                    rows.tolist(), sample[rows].tolist()
                ):
                    vms[r].current_demand = value
        fresh_vals = [vm.current_demand for vm in late]
        for vm, stale in zip(late, stale_vals):
            vm.current_demand = stale

        # 2. per-host sums, raw wall demand and Eq. 4 over the block.
        vm_sums = self._vm_sums
        for i, ctrl in enumerate(ctrls):
            vm_sums[self.local_slices[i]] = ctrl._host_demand_sums(demands[i])
        raw = np.where(
            self.asleep,
            self.standby_power,
            np.where(
                self.waking,
                self.static_power,
                self.static_power + vm_sums + self.mig_cost,
            ),
        )
        # VectorSmoother.update with a per-lane alpha: the same IEEE-754
        # expression per lane, sites with different alphas included.
        smoothed_expr = self.alpha * raw + (1.0 - self.alpha) * self.values
        fresh = np.where(self.primed, smoothed_expr, raw)
        mask = ~self.waking
        np.copyto(self.values, fresh, where=mask)
        self.primed |= mask
        smoothed = self.values
        self.raw[...] = raw
        for i in range(len(ctrls)):
            self._dirty_servers[i] = True
        self._aggregate_demands(now)

        # 3. the budget waterfall, one allocate_level call per level
        # across every site (the coordinator validates a shared eta1,
        # and segment members share the base cadence rule).
        if ctrls[0]._allocation_due():
            self._allocate_budgets(now)
            self.budget[...] = self._budget_buf[self.server_gidx]

        # 4. per-site demand migrations (planner state is per site).
        moved = [False] * len(ctrls)
        for i, ctrl in enumerate(ctrls):
            sl = self.local_slices[i]
            deficient = self.awake[sl] & (raw[sl] > self.budget[sl] + _EPS)
            if not bool(deficient.any()):
                continue
            # The planner walks runtime objects (raw demand, budgets,
            # VM demands): refresh this site before handing over.
            self._flush_servers(i)
            self._flush_vms(i)
            plan = ctrl._plan_demand_migrations(raw[sl], smoothed[sl])
            if plan is not None:
                ctrl._execute_moves(plan.moves, MigrationCause.DEMAND, now)
                moved[i] = bool(plan.moves)
                for vm, node in plan.dropped:
                    ctrl.collector.record_unmatched(
                        Drop(now, node.node_id, vm.vm_id, vm.current_demand)
                    )

        # 5. per-site consolidation on each site's own eta2 cadence.
        for i, ctrl in enumerate(ctrls):
            if (
                ctrl._tick_index > 0
                and ctrl._tick_index % ctrl.config.eta2 == 0
            ):
                # Consolidation reads and mutates the objects, then
                # gather() re-adopts them into the arrays wholesale.
                self._flush_servers(i)
                self._flush_vms(i)
                n_migrations = len(ctrl.collector.migrations)
                ctrl._consolidate(now)
                moved[i] = (
                    moved[i]
                    or len(ctrl.collector.migrations) > n_migrations
                )
                ctrl.fleet.gather()
                self._dirty_servers[i] = False
            if moved[i]:
                vm_sums[self.local_slices[i]] = ctrl._host_demand_sums(
                    demands[i]
                )
                ctrl.fleet.gather_costs()
                self._cost_watch[i] = True

        # 6. serve power within budget across the whole block.
        available = np.maximum(
            self.budget - self.static_power - self.mig_cost, 0.0
        )
        fast = self.awake & (available >= vm_sums + _SERVE_MARGIN)
        served = np.where(fast, vm_sums, 0.0)
        slow_rows = np.nonzero(self.awake & ~fast)[0]
        if len(slow_rows):
            available_list = available.tolist()
            for r in slow_rows.tolist():
                i = int(self.row_site[r])
                ctrl = ctrls[i]
                self._flush_vms(i)  # priority serving reads VM objects
                served[r] = ctrl._serve_scalar(
                    ctrl.fleet.servers[r - int(self.row_base[i])],
                    available_list[r],
                    now,
                )
        self.served[...] = served

        # 7. thermal update (Eq. 2/3) over the block, then samples.
        wall = np.where(
            self.asleep,
            self.standby_power,
            np.where(
                self.waking,
                self.static_power,
                self.static_power + served,
            ),
        )
        if self.thermal_mode == "window_reset":
            temps = temperature_step_arrays(
                self.t_ambient,
                wall,
                t_ambient=self.t_ambient,
                c1=self.c1,
                c2=self.c2,
                decay=self.decay_window,
            )
            violations = temps > self.t_limit + 1e-6
        elif self.thermal_mode == "integrated":
            temps = temperature_step_arrays(
                self.temperature,
                wall,
                t_ambient=self.t_ambient,
                c1=self.c1,
                c2=self.c2,
                decay=self.decay_tick,
            )
            violations = temps > self.t_limit + 1e-9
        else:  # mixed thermal modes: per-site sub-sweeps
            temps = np.empty(self.n)
            violations = np.empty(self.n, dtype=bool)
            for i, ctrl in enumerate(ctrls):
                sl = self.local_slices[i]
                fleet = ctrl.fleet
                if ctrl.config.thermal_mode == "window_reset":
                    temps[sl] = temperature_step_arrays(
                        fleet.t_ambient,
                        wall[sl],
                        t_ambient=fleet.t_ambient,
                        c1=fleet.c1,
                        c2=fleet.c2,
                        decay=fleet.decay_window,
                    )
                    violations[sl] = temps[sl] > fleet.t_limit + 1e-6
                else:
                    temps[sl] = temperature_step_arrays(
                        fleet.temperature,
                        wall[sl],
                        t_ambient=fleet.t_ambient,
                        c1=fleet.c1,
                        c2=fleet.c2,
                        decay=fleet.decay_tick,
                    )
                    violations[sl] = temps[sl] > fleet.t_limit + 1e-9
        self.temperature[...] = temps
        utilization = np.where(
            self.awake, np.minimum(served / self.slope, 1.0), 0.0
        )
        np.maximum(self._peak, temps, out=self._peak)
        self._viol += violations
        # One queued column block per site; ServerSample objects only
        # materialise if somebody reads the list.  budget/awake mutate
        # across ticks, so those two columns are snapshotted.
        budget_copy = self.budget.copy()
        awake_copy = self.awake.copy()
        for i, ctrl in enumerate(ctrls):
            sl = self.local_slices[i]
            ctrl.collector.server_samples.push_block(
                _server_block(
                    now,
                    ctrl._server_ids,
                    wall[sl],
                    temps[sl],
                    utilization[sl],
                    raw[sl],
                    budget_copy[sl],
                    awake_copy[sl],
                )
            )
            self._dirty_servers[i] = True

        # 8+9. switch power and level-0 imbalance.
        if any(ctrl.ipc_graph is not None for ctrl in ctrls):
            # IPC paths need the per-site dict-based bookkeeping.
            for ctrl in ctrls:
                ctrl._record_switches(now)
            self._adopt_switch_power()
        else:
            self._record_switches_fused(now)
        for i, ctrl in enumerate(ctrls):
            ctrl.collector.record_imbalance(
                now,
                power_imbalance(raw[self.local_slices[i]], ctrl.fleet.budget),
            )
        for i, ctrl in enumerate(ctrls):
            if ctrl.on_tick:
                self._flush_servers(i)
                self._flush_vms(i)
                for hook in ctrl.on_tick:
                    hook(ctrl, ctrl._tick_index, now)
                self._dirty_servers[i] = True
            ctrl._tick_index += 1

        # The segment is done reading: late-pair guests now carry the
        # demand their home generator sampled this tick, exactly the
        # state site-major execution leaves behind.
        for vm, value in zip(late, fresh_vals):
            vm.current_demand = value

    # ------------------------------------------------------- demand reports
    def _aggregate_demands(self, now: float) -> None:
        """Bottom-up Eq. 4 propagation, one fold per level across all
        segment sites at once (groups are independent, so concatenating
        sites preserves each per-node left-to-right fold)."""
        below = self._demand_buf
        below[self.server_gidx] = self.values
        for level in self.levels:
            totals = fold_segment_sums(
                below[level.child_gidx], level.pad_idx, level.valid
            )
            total_list = totals.tolist()
            k = 0
            for ctrl, spec in level.parts:
                for runtime in spec.runtimes:
                    runtime.observe_demand(total_list[k])
                    k += 1
            below[level.node_gidx] = np.fromiter(
                (
                    r.smoothed_demand
                    for _ctrl, spec in level.parts
                    for r in spec.runtimes
                ),
                float,
                len(level.node_gidx),
            )
        for i, ctrl in enumerate(self.controllers):
            ctrl.collector.messages.push_block(
                _message_block(now, self._up_ids[i], True)
            )

    # ------------------------------------------------------------ switches
    def _record_switches_fused(self, now: float) -> None:
        """Scalar ``_record_switches`` across every site at once: one
        served-power fold per level, one linear power expression over
        the shared switch array, lazily-queued samples."""
        below = self._served_buf
        below[self.server_gidx] = self.served
        for level in self.levels:
            below[level.node_gidx] = fold_segment_sums(
                below[level.child_gidx], level.pad_idx, level.valid
            )
        base = below[self._sw_site_gidx] / self._sw_red
        migration = np.zeros(len(base))
        for i, ctrl in enumerate(self.controllers):
            traffic = ctrl._tick_migration_traffic
            if traffic:
                pos = self._sw_pos[i]
                for switch_id, extra in traffic.items():
                    migration[pos[switch_id]] += extra
        power = self._sw_static + self._sw_wpu * (base + migration)
        self._switch_power = power
        self._switch_dict_stale = True
        for i, ctrl in enumerate(self.controllers):
            sl = self._sw_slices[i]
            ids, levels = self._sw_meta[i]
            ctrl.collector.switch_samples.push_block(
                _switch_block(
                    now,
                    ids,
                    levels,
                    base[sl],
                    migration[sl],
                    power[sl],
                )
            )

    def _adopt_switch_power(self) -> None:
        """Per-site recording just ran: re-read the power dicts."""
        self._switch_power = np.concatenate(
            [
                np.fromiter(
                    (
                        ctrl._last_switch_power[s.switch_id]
                        for s in ctrl._switch_list
                    ),
                    float,
                    len(ctrl._switch_list),
                )
                for ctrl in self.controllers
            ]
        )
        self._switch_dict_stale = False

    # --------------------------------------------------------- supply side
    def _hard_caps(self) -> np.ndarray:
        if self._static_caps is not None:
            return self._static_caps
        return np.concatenate(
            [ctrl.fleet.hard_caps() for ctrl in self.controllers]
        )

    def _allocate_budgets(self, now: float) -> None:
        """The Sec. IV-D waterfall, level-at-a-time across all sites."""
        caps = self._caps_buf
        caps[self.server_gidx] = self._hard_caps()
        for level in self.levels:
            caps[level.node_gidx] = fold_segment_sums(
                caps[level.child_gidx], level.pad_idx, level.valid
            )

        budgets = self._budget_buf
        for ctrl, root_gid, runtime in self.root_entries:
            ctrl.root_budget = ctrl.supply.at(now)
            runtime.set_budget(min(ctrl.root_budget, caps[root_gid]))
            budgets[root_gid] = runtime.budget

        for level in reversed(self.levels):
            reserves = fold_segment_sums(
                self._switch_power[level.reserve_rows],
                level.reserve_pad,
                level.reserve_valid,
            )
            parent_budget = np.maximum(
                budgets[level.node_gidx] - reserves, 0.0
            )
            child_caps = caps[level.child_gidx]
            if level.capacity_mask is None:
                weights = (
                    child_caps
                    if level.capacity_mode
                    else self._demand_buf[level.child_gidx]
                )
            else:
                weights = np.where(
                    level.capacity_mask,
                    child_caps,
                    self._demand_buf[level.child_gidx],
                )
            allocations, _unused = allocate_level(
                parent_budget, weights, child_caps, index=level.alloc_index
            )
            budgets[level.child_gidx] = allocations
            allocation_list = allocations.tolist()
            k = 0
            for ctrl, spec in level.parts:
                for runtime in spec.child_runtimes:
                    runtime.set_budget(allocation_list[k])
                    k += 1
        for i, ctrl in enumerate(self.controllers):
            ctrl.collector.messages.push_block(
                _message_block(now, self._down_ids[i], False)
            )


class BatchedFederationCoordinator(FederationCoordinator):
    """Drop-in :class:`FederationCoordinator` with a batched tick path.

    Same constructor and public surface; sites built on
    :class:`~repro.core.vectorized.VectorizedWillowController` (see
    ``build_federation(vectorized=True)``) tick fused in segments, the
    rest tick scalar at their positions.
    """

    def __init__(
        self,
        sites: Sequence[Site],
        *,
        federation=None,
        tracer=None,
    ):
        super().__init__(sites, federation=federation, tracer=tracer)
        #: vm_id -> global index of the VM's *home* site (lazily built
        #: on the first cross-site move; needed only for staleness
        #: bookkeeping once guests exist).
        self._vm_home: Optional[Dict[int, int]] = None

        runs: List[List[int]] = []
        plan: List[object] = []
        run: List[int] = []
        for idx, site in enumerate(self.sites):
            if self._fusable(site):
                run.append(idx)
            else:
                if run:
                    runs.append(run)
                    plan.append(run)
                    run = []
                plan.append(site)
        if run:
            runs.append(run)
            plan.append(run)

        fused_idx = [i for r in runs for i in r]
        if fused_idx:
            self.fed_fleet: Optional[FederationFleet] = FederationFleet(
                [self.sites[i].controller.fleet for i in fused_idx]
            )
            block_slice = {
                i: self.fed_fleet.site_slices[k]
                for k, i in enumerate(fused_idx)
            }
        else:
            self.fed_fleet = None
        self._plan: List[object] = []
        self.segments: List[_Segment] = []
        #: controller -> (owning segment, position inside it), for the
        #: rebalance path to flush deferred state on demand.
        self._seg_of_ctrl: Dict[object, Tuple[_Segment, int]] = {}
        for part in plan:
            if isinstance(part, list):
                segment = _Segment(
                    self,
                    [
                        (self.sites[i].controller, i, block_slice[i])
                        for i in part
                    ],
                )
                self.segments.append(segment)
                self._plan.append(segment)
                for pos, ctrl in enumerate(segment.controllers):
                    self._seg_of_ctrl[ctrl] = (segment, pos)
            else:
                self._plan.append(part)

    @staticmethod
    def _fusable(site: Site) -> bool:
        controller = site.controller
        return isinstance(
            controller, VectorizedWillowController
        ) and isinstance(controller.demand_source, DemandGenerator)

    def snapshot_state(self) -> Dict:
        """Not supported: the fused tick defers object scatter behind
        per-site dirty flags, so between-ticks object state is not
        guaranteed coherent.  Build with ``vectorized=False`` for a
        checkpointable federation (site controllers may themselves be
        vectorized via ``SiteSpec.vectorized``)."""
        from repro.checkpoint.errors import CheckpointError

        raise CheckpointError(
            "BatchedFederationCoordinator does not support checkpointing; "
            "build the federation with vectorized=False (per-site "
            "vectorized controllers remain supported)"
        )

    # ------------------------------------------------------------------ run
    def run(self, n_ticks: int) -> "FederationCoordinator":
        result = super().run(n_ticks)
        for segment in self.segments:
            segment.flush()
        return result

    # ----------------------------------------------------------------- tick
    def _tick(self) -> None:
        tick = self._tick_index
        now = tick * self.delta_d
        if tick > 0 and tick % self.eta1 == 0:
            self._rebalance(tick, now)
        for part in self._plan:
            if isinstance(part, _Segment):
                if part.tracing_active():
                    # Site tracing needs the per-site frame order; each
                    # per-site vectorized tick is already bit-exact
                    # under tracing, so fall back to site-major.
                    part.scalar_tick()
                else:
                    part.tick(now)
            else:
                part.controller._tick()
        for site in self.sites:
            site.controller.env.advance(site.config.delta_d)
        self._tick_index += 1

    # ----------------------------------------------------------- rebalance
    def _shed_candidates(
        self, site: Site, watts: float
    ) -> List[Tuple[int, float, Item]]:
        """Array pre-screen of the Sec. IV-E shedding rule.

        Donor order and per-server largest-first takes come from
        :mod:`repro.binpack.prescreen`; per-server floats come straight
        off the block arrays (bit-identical to the object attributes an
        eager tick would have written), so decisions (and the
        directive's running left fold) are exactly the scalar
        coordinator's.
        """
        controller = site.controller
        if not isinstance(controller, VectorizedWillowController):
            return super()._shed_candidates(site, watts)
        entry = self._seg_of_ctrl.get(controller)
        if entry is not None:
            # VM metadata is read from the objects below.
            entry[0]._flush_vms(entry[1])
        config = site.config
        fleet = controller.fleet
        rows = deficient_order(
            fleet.awake, fleet.raw, fleet.budget, fleet.node_ids, _EPS
        )
        left = watts
        out: List[Tuple[int, float, Item]] = []
        if not len(rows):
            return out
        raw_list = fleet.raw[rows].tolist()
        budget_list = fleet.budget[rows].tolist()
        for k_row, r in enumerate(rows.tolist()):
            if left <= _EPS:
                break
            server = fleet.servers[r]
            raw_r = raw_list[k_row]
            budget_r = budget_list[k_row]
            deficit = raw_r - budget_r
            goal = max(budget_r - config.p_min, 0.0)
            vms = list(server.vms.values())
            if not vms:
                continue
            demands = np.fromiter(
                (v.current_demand for v in vms), float, len(vms)
            )
            vm_ids = np.fromiter(
                (v.vm_id for v in vms), np.int64, len(vms)
            )
            order = shed_vm_order(demands, vm_ids)
            takes, left = shed_takes(
                demands[order], raw_r, goal, left, _EPS
            )
            for k in takes:
                vm = vms[int(order[k])]
                out.append(
                    (
                        server.node.node_id,
                        deficit,
                        Item(
                            key=vm.vm_id,
                            size=vm.current_demand,
                            payload=vm,
                        ),
                    )
                )
        return out

    def _preshed_candidates(
        self, site: Site, watts: float
    ) -> List[Tuple[int, float, Item]]:
        """Pre-emptive shedding for a batched site.

        VM takes are decided on the object metadata, so the deferred
        segment state is flushed first; server order (least headroom
        first) comes off the block arrays, bit-identical to the scalar
        coordinator's attribute reads.
        """
        controller = site.controller
        if not isinstance(controller, VectorizedWillowController):
            return super()._preshed_candidates(site, watts)
        entry = self._seg_of_ctrl.get(controller)
        if entry is not None:
            entry[0]._flush_vms(entry[1])
        fleet = controller.fleet
        headroom = fleet.budget - fleet.raw
        rows = np.lexsort((fleet.node_ids, headroom))
        remaining_directive = watts
        out: List[Tuple[int, float, Item]] = []
        awake_list = fleet.awake[rows].tolist()
        for k_row, r in enumerate(rows.tolist()):
            if remaining_directive <= _EPS:
                break
            if not awake_list[k_row]:
                continue
            server = fleet.servers[r]
            for vm in sorted(
                server.vms.values(),
                key=lambda v: (-v.current_demand, v.vm_id),
            ):
                if remaining_directive <= _EPS:
                    break
                if vm.current_demand <= 0:
                    continue
                if vm.current_demand > remaining_directive + _EPS:
                    continue
                out.append(
                    (
                        server.node.node_id,
                        watts,
                        Item(
                            key=vm.vm_id,
                            size=vm.current_demand,
                            payload=vm,
                        ),
                    )
                )
                remaining_directive -= vm.current_demand
        return out

    def _destination_bins(self, site: Site) -> List[Bin]:
        """Array pre-screen of the FFDLR receiver bins (awake, not
        deficient, not squeezed, positive post-margin surplus)."""
        controller = site.controller
        if not isinstance(controller, VectorizedWillowController):
            return super()._destination_bins(site)
        wan_power, _ = self._wan_cost(site)
        config = site.config
        fleet = controller.fleet
        squeezed = controller._squeezed_mask(fleet.smoother.values)
        capacity = fleet.budget - fleet.raw - config.p_min - wan_power
        order, caps = destination_order(
            fleet.awake,
            fleet.raw,
            fleet.budget,
            squeezed,
            capacity,
            fleet.node_ids,
            _EPS,
        )
        cap_list = caps.tolist()
        node_list = fleet.node_ids[order].tolist()
        return [
            Bin(key=int(node_id), capacity=cap_list[k])
            for k, node_id in enumerate(node_list)
        ]

    def _move_vm(self, vm, src_site, src_node, dst_site, dst_node, now, **kw):
        if self._vm_home is None:
            self._vm_home = {
                v.vm_id: i
                for i, s in enumerate(self.sites)
                for v in s.controller.placement.vms
            }
        super()._move_vm(
            vm, src_site, src_node, dst_site, dst_node, now, **kw
        )
        # WAN costs were charged on both endpoints: arm the sparse
        # housekeeping watch so the next fused tick expires them.
        for endpoint in (src_site, dst_site):
            entry = self._seg_of_ctrl.get(endpoint.controller)
            if entry is not None:
                entry[0].note_cost_activity(entry[1])

    # ------------------------------------------------------------ snapshot
    def fleet_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-site raw/served/budget totals as segment reductions over
        the shared block (scalar-ticking sites summed from objects)."""
        out: Dict[str, Dict[str, float]] = {}
        if self.fed_fleet is not None:
            fed = self.fed_fleet
            raw = fed.site_sums(fed.raw)
            served = fed.site_sums(fed.served)
            budget = fed.site_sums(fed.budget)
            fused = [
                s for s in self.sites if self._fusable(s)
            ]
            for k, site in enumerate(fused):
                out[site.name] = {
                    "raw": float(raw[k]),
                    "served": float(served[k]),
                    "budget": float(budget[k]),
                }
        for site in self.sites:
            if site.name in out:
                continue
            servers = site.controller.servers.values()
            out[site.name] = {
                "raw": float(sum(s.raw_demand for s in servers)),
                "served": float(sum(s.served_power for s in servers)),
                "budget": float(sum(s.budget for s in servers)),
            }
        return out
