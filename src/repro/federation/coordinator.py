"""The grid-level coordinator: N Willow sites run as one system.

Willow's hierarchy composes upward (Fig. 1): a data-center PMU can be
the child of a grid-level controller.  The
:class:`FederationCoordinator` is that next level, implemented exactly
in the paper's idiom:

* **Tick-locked execution.**  All sites share the demand cadence
  ``Delta_D`` and advance in lock step; each site remains a complete,
  unmodified Willow instance (scalar or fault-tolerant).
* **Supply-cadence decisions.**  Every ``Delta_S = eta1`` ticks the
  coordinator snapshots per-site headroom/deficit from *smoothed*
  demand (Eq. 4) against the delivered (post-UPS) supply and asks the
  configured policy (:mod:`repro.federation.policies`) for transfer
  directives.
* **FFDLR repack.**  Directives are realised as whole-VM moves: the
  deficit site sheds its largest over-budget VMs (the Sec. IV-E
  shedding rule), the destination site's eligible servers become bins
  (surplus minus the ``P_min`` margin and the WAN migration cost), and
  :func:`repro.binpack.ffdlr.ffdlr_pack` matches them.  Unplaceable
  items simply stay home -- cross-site shifting is opportunistic, never
  a new source of drops.
* **WAN cost as temporary power demand.**  Exactly as Sec. IV-E charges
  intra-site migrations, a cross-site move charges
  ``wan_cost_power`` watts for ``wan_cost_ticks`` ticks to *both* end
  servers -- just scaled up, because state now crosses a WAN.

Equivalence contract (enforced by ``tests/test_federation.py``): a
federation of one site under the ``neutral`` policy reproduces the
scalar :class:`~repro.core.controller.WillowController` bit-exactly --
same decisions, same float trajectories.  The same contract the
distributed and fault-tolerant layers honor, and what keeps this
subsystem testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.binpack.ffdlr import ffdlr_pack
from repro.binpack.items import Bin, Item
from repro.federation.forecasts import ForecastModel, resolve_forecast_model
from repro.federation.policies import (
    POLICIES,
    SiteStatus,
    Transfer,
    as_policy,
)
from repro.federation.predictive import (
    CoolingControl,
    CoolingSetpoint,
    PredictivePlanner,
    SiteForecast,
)
from repro.federation.site import Site, SiteSpec, build_site
from repro.trace.tracer import Tracer, active_tracer

__all__ = [
    "FederationConfig",
    "CrossSiteMigration",
    "FederationCoordinator",
    "build_federation",
    "run_federation",
]

_EPS = 1e-9


@dataclass(frozen=True)
class FederationConfig:
    """Tunables of the grid-level control loop.

    Attributes
    ----------
    policy:
        Policy slug from :data:`repro.federation.policies.POLICIES` or
        a callable with the same signature.
    wan_cost_power:
        Temporary power demand (W) charged to both end servers of a
        cross-site move.  ``None`` defaults to 4x the intra-site
        ``migration_cost_power`` -- WAN state transfer is strictly more
        expensive than a rack-local move.
    wan_cost_ticks:
        How many ticks the WAN cost persists; ``None`` defaults to 2x
        the intra-site ``migration_cost_ticks``.
    margin:
        Watts of headroom a donor site always keeps (the federation
        analogue of ``P_min``); ``None`` defaults to the site config's
        ``p_min``.
    horizon:
        Lookahead steps (supply periods) for forecast-aware policies;
        0 keeps even ``predictive`` exactly proportional.
    discount:
        Per-step geometric discount on predicted deficits.
    cooling:
        Optional :class:`~repro.federation.predictive.CoolingControl`:
        charges the modeled cooling-plant overhead against every site's
        budget and lets the predictive planner actuate supply-air
        setpoints.  ``None`` (the default) changes nothing.
    forecast:
        Supply forecast model for forecast-aware policies and the gym
        environment's observations: a
        :class:`~repro.federation.forecasts.ForecastModel`, a spec
        string (``"oracle"``, ``"persistence"``,
        ``"noisy-oracle:SIGMA[:SEED]"``, ``"ar1:RHO:SIGMA[:SEED]"``) or
        ``None``/``"oracle"`` for the PR 9 perfect-lookahead behaviour.
    """

    policy: Union[str, Callable] = "neutral"
    wan_cost_power: Optional[float] = None
    wan_cost_ticks: Optional[int] = None
    margin: Optional[float] = None
    horizon: int = 0
    discount: float = 0.6
    cooling: Optional[CoolingControl] = None
    forecast: Union[str, ForecastModel, None] = "oracle"

    def __post_init__(self) -> None:
        if self.horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {self.horizon}")
        if not 0.0 < self.discount <= 1.0:
            raise ValueError(
                f"discount must be in (0, 1], got {self.discount}"
            )

    def resolve_policy(self) -> Callable:
        """The policy callable, normalised to the registration protocol.

        Registry slugs come back as registered (every shipped policy
        carries explicit ``policy_name``/``forecast_aware`` attributes
        from the ``@policy`` decorator); bare callables are stamped
        with conservative defaults by
        :func:`~repro.federation.policies.as_policy` so the coordinator
        never probes with ``getattr`` defaults.
        """
        if callable(self.policy):
            return as_policy(self.policy)
        try:
            return POLICIES[self.policy]
        except KeyError:
            raise ValueError(
                f"unknown federation policy {self.policy!r}; "
                f"choose from {sorted(POLICIES)}"
            ) from None


@dataclass(frozen=True, slots=True)
class CrossSiteMigration:
    """One executed cross-site VM move with its decision inputs.

    ``src_deficit`` and ``dst_surplus`` are the Eq. 5-9 quantities the
    shift was justified by, captured when the move was decided: the
    source server's observed demand beyond its budget at shedding time,
    and the destination bin's remaining surplus (budget minus demand,
    ``P_min`` margin, WAN cost, and any load already packed this round)
    just before this VM landed.  Both are strictly positive by
    construction -- a shift is only taken from a deficit into room.
    """

    time: float
    vm_id: int
    src_site: str
    dst_site: str
    src_node: int
    dst_node: int
    demand: float  # VM demand (W) at shift time
    wan_cost_power: float
    src_deficit: float
    dst_surplus: float


class FederationCoordinator:
    """Runs N sites tick-locked with supply-aware load shifting."""

    def __init__(
        self,
        sites: Sequence[Site],
        *,
        federation: Optional[FederationConfig] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not sites:
            raise ValueError("federation needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"site names must be unique, got {names}")
        first = sites[0].config
        for site in sites[1:]:
            if site.config.delta_d != first.delta_d:
                raise ValueError(
                    "tick-locked federation requires identical delta_d "
                    f"across sites; {site.name} differs"
                )
            if site.config.eta1 != first.eta1:
                raise ValueError(
                    "tick-locked federation requires identical eta1 "
                    f"across sites; {site.name} differs"
                )
        self.sites: List[Site] = list(sites)
        self._by_name: Dict[str, Site] = {s.name: s for s in self.sites}
        self.federation = federation or FederationConfig()
        self._policy = self.federation.resolve_policy()
        self.delta_d = first.delta_d
        self.eta1 = first.eta1

        #: The receding-horizon planner, for forecast-aware policies
        #: with a positive horizon; ``None`` keeps the plain
        #: ``policy(statuses, margin=...)`` call (and ``predictive`` at
        #: ``horizon=0`` therefore stays bit-exact with proportional).
        self._planner: Optional[PredictivePlanner] = None
        if self._policy.forecast_aware and self.federation.horizon > 0:
            self._planner = PredictivePlanner(
                horizon=self.federation.horizon,
                discount=self.federation.discount,
                policy=self._policy,
            )
        #: The supply forecast model behind :meth:`site_forecasts`.
        self.forecast_model: ForecastModel = resolve_forecast_model(
            self.federation.forecast
        )
        #: Cooling setpoint directives per shift tick.
        self.setpoint_log: List[Tuple[int, List[CoolingSetpoint]]] = []
        if self.federation.cooling is not None:
            self._install_cooling()

        #: Executed cross-site moves, time-ordered.
        self.cross_migrations: List[CrossSiteMigration] = []
        #: Policy directives per shift tick: ``(tick, [Transfer, ...])``.
        self.transfer_log: List[Tuple[int, List[Transfer]]] = []
        self._tick_index = 0

        #: Observer hooks run *between* ticks --
        #: ``hook(coordinator, completed_ticks)`` fires after every
        #: site's tick and clock advance, so a checkpoint taken here
        #: needs no fixup (see :mod:`repro.checkpoint`).
        self.on_tick: List[Callable] = []

        self.tracer = tracer if tracer is not None else active_tracer()
        if self.tracer.enabled:
            self.tracer.write_federation_meta(
                names,
                self.federation.policy
                if isinstance(self.federation.policy, str)
                else getattr(self._policy, "__name__", "custom"),
            )

    # ------------------------------------------------------------------ run
    def run(self, n_ticks: int) -> "FederationCoordinator":
        """Advance every site ``n_ticks`` demand windows, shifting load
        on the supply cadence.  Returns ``self`` for chaining."""
        if n_ticks < 1:
            raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
        for _ in range(n_ticks):
            self._tick()
        for site in self.sites:
            site.controller.tracer.flush()
        self.tracer.flush()
        return self

    def _tick(self) -> None:
        tick = self._tick_index
        now = tick * self.delta_d
        # Grid-level decisions happen on the supply cadence, *before*
        # the sites' own ticks, so this tick's Delta_S allocation at
        # each site already sees the shifted workload.  Tick 0 is
        # skipped: smoothed demand carries no information yet.
        if tick > 0 and tick % self.eta1 == 0:
            self._rebalance(tick, now)
        for site in self.sites:
            site.controller._tick()
        for site in self.sites:
            site.controller.env.advance(site.config.delta_d)
        self._tick_index += 1
        for hook in self.on_tick:
            hook(self, self._tick_index)

    # ----------------------------------------------------------- shifting
    def statuses(self, now: float) -> List[SiteStatus]:
        """Per-site supply-period snapshot the policy decides from."""
        return [
            SiteStatus(
                name=site.name,
                supply=site.supply_at(now),
                smoothed_demand=site.smoothed_demand(),
                carbon=site.carbon_at(now),
                price=site.price_at(now),
            )
            for site in self.sites
        ]

    def _install_cooling(self) -> None:
        """Wrap every site's supply in the overhead-charging actuator.

        Rejected for vectorized site controllers: their thermal state
        lives in fleet arrays, so per-server setpoint actuation has no
        object path to write through.
        """
        from repro.core.vectorized import VectorizedWillowController

        cooling = self.federation.cooling
        for site in self.sites:
            if isinstance(site.controller, VectorizedWillowController):
                raise ValueError(
                    "cooling actuation needs per-server object thermal "
                    f"state; site {site.name!r} runs the vectorized "
                    "controller (build with vectorized=False and "
                    "SiteSpec.vectorized=False)"
                )
            site.install_cooling(cooling)

    def _update_cooling(self, now: float) -> None:
        """Refresh each site's charged cooling-plant overhead.

        Smoothed IT demand over the COP at the standing setpoint --
        recomputed on the supply cadence, *before* statuses are taken,
        so the policy sees supply net of the cooling it is paying for.
        """
        cooling = self.federation.cooling
        if cooling is None or not cooling.charge_overhead:
            return
        for site in self.sites:
            if site.actuated_supply is None:
                continue
            setpoint = (
                site.setpoint
                if site.setpoint is not None
                else cooling.nominal_setpoint
            )
            site.actuated_supply.overhead = cooling.overhead_power(
                site.smoothed_demand(), setpoint
            )

    def forecasts(self, now: float) -> List[SiteForecast]:
        """One K-step lookahead per site, for the predictive planner.

        The horizon is the planner's (0 without one); see
        :meth:`site_forecasts` for the construction contract.
        """
        horizon = self._planner.horizon if self._planner is not None else 0
        return self.site_forecasts(now, horizon)

    def site_forecasts(self, now: float, horizon: int) -> List[SiteForecast]:
        """One ``horizon``-step lookahead per site.

        ``supplies[k]`` comes from the configured
        :class:`~repro.federation.forecasts.ForecastModel` (the default
        oracle is the segment-exact mean of the *delivered*, post-UPS
        supply over future supply period ``k``), minus the site's
        standing cooling overhead, clamped at zero; the battery fields
        come from the UPS charge plan precomputed at build time.  Both
        the predictive planner and the gym environment's observations
        (:mod:`repro.gym`) read through here.
        """
        step = self.eta1 * self.delta_d
        model = self.forecast_model
        out: List[SiteForecast] = []
        for site in self.sites:
            overhead = (
                site.actuated_supply.overhead
                if site.actuated_supply is not None
                else 0.0
            )
            supplies = tuple(
                max(s - overhead, 0.0)
                for s in model.supplies(site, now, horizon, step)
            )
            out.append(
                SiteForecast(
                    name=site.name,
                    supplies=supplies,
                    battery_charge=site.battery_charge_at(now),
                    battery_rate=site.battery_rate,
                )
            )
        return out

    def _wan_break_even(self) -> float:
        """Energy (W * time units) one WAN move charges, both ends.

        The planner's gate for pre-emptive shifts; the max across sites
        keeps the gate conservative when WAN costs differ.
        """
        return max(
            2.0 * power * ticks * self.delta_d
            for power, ticks in (self._wan_cost(site) for site in self.sites)
        )

    def _rebalance(self, tick: int, now: float) -> None:
        self._update_cooling(now)
        statuses = self.statuses(now)
        margin = self.federation.margin
        if margin is None:
            margin = max(site.config.p_min for site in self.sites)
        setpoints: List[CoolingSetpoint] = []
        if self._planner is not None:
            transfers, setpoints = self._planner.plan(
                statuses,
                self.forecasts(now),
                margin=margin,
                step=self.eta1 * self.delta_d,
                wan_break_even=self._wan_break_even(),
                cooling=self.federation.cooling,
            )
        else:
            transfers = self._policy(statuses, margin=margin)
        if self.tracer.enabled:
            self.tracer.begin_tick(tick, now)
            for status in statuses:
                self.tracer.record_site_grant(
                    status.name,
                    status.supply,
                    status.smoothed_demand,
                    status.headroom,
                    status.carbon,
                    status.price,
                )
            if self._planner is not None:
                for status in statuses:
                    deficits = self._planner.last_plan.get(status.name)
                    if deficits:
                        self.tracer.record_planner(
                            status.name,
                            self._planner.horizon,
                            deficits,
                            setpoint=self._planner.setpoints.get(status.name),
                        )
        if setpoints:
            self.setpoint_log.append((tick, list(setpoints)))
            for directive in setpoints:
                self._by_name[directive.site].apply_setpoint(
                    directive.base_ambient
                )
        if not transfers:
            return
        self.transfer_log.append((tick, list(transfers)))
        for transfer in transfers:
            self._execute_transfer(transfer, now)

    def _wan_cost(self, site: Site) -> Tuple[float, int]:
        config = site.config
        power = self.federation.wan_cost_power
        if power is None:
            power = 4.0 * config.migration_cost_power
        ticks = self.federation.wan_cost_ticks
        if ticks is None:
            ticks = 2 * config.migration_cost_ticks
        return power, ticks

    def _shed_candidates(
        self, site: Site, watts: float
    ) -> List[Tuple[int, float, Item]]:
        """Whole VMs the deficit site would send away, largest first.

        Mirrors the Sec. IV-E shedding rule per server (shed until the
        remaining demand fits under ``budget - P_min``), capped globally
        at the transfer directive -- a VM bigger than the remaining
        directive is skipped, never overshooting what the policy asked.
        """
        config = site.config
        controller = site.controller
        deficient = sorted(
            (
                s
                for s in controller.servers.values()
                if s.is_awake and s.raw_demand > s.budget + _EPS
            ),
            key=lambda s: (s.budget - s.raw_demand, s.node.node_id),
        )
        remaining_directive = watts
        out: List[Tuple[int, float, Item]] = []
        for server in deficient:
            if remaining_directive <= _EPS:
                break
            deficit = server.raw_demand - server.budget
            goal = max(server.budget - config.p_min, 0.0)
            remaining = server.raw_demand
            for vm in sorted(
                server.vms.values(),
                key=lambda v: (-v.current_demand, v.vm_id),
            ):
                if remaining <= goal + _EPS or remaining_directive <= _EPS:
                    break
                if vm.current_demand <= 0:
                    continue
                if vm.current_demand > remaining_directive + _EPS:
                    continue  # would overshoot the directive
                out.append(
                    (
                        server.node.node_id,
                        deficit,
                        Item(
                            key=vm.vm_id,
                            size=vm.current_demand,
                            payload=vm,
                        ),
                    )
                )
                remaining -= vm.current_demand
                remaining_directive -= vm.current_demand
        return out

    def _preshed_candidates(
        self, site: Site, watts: float
    ) -> List[Tuple[int, float, Item]]:
        """Whole VMs a *pre-emptive* transfer ships out, ahead of a crunch.

        The source has no over-budget servers yet (that is the point of
        shifting early), so the Sec. IV-E rule has nothing to shed.
        Instead take the largest VMs from the least-headroom awake
        servers -- the ones the forecast dims first -- capped at the
        directive.  The recorded ``src_deficit`` is the directive
        itself: the *predicted*, not observed, deficit.
        """
        controller = site.controller
        candidates = sorted(
            (
                s
                for s in controller.servers.values()
                if s.is_awake and s.vms
            ),
            key=lambda s: (s.budget - s.raw_demand, s.node.node_id),
        )
        remaining_directive = watts
        out: List[Tuple[int, float, Item]] = []
        for server in candidates:
            if remaining_directive <= _EPS:
                break
            for vm in sorted(
                server.vms.values(),
                key=lambda v: (-v.current_demand, v.vm_id),
            ):
                if remaining_directive <= _EPS:
                    break
                if vm.current_demand <= 0:
                    continue
                if vm.current_demand > remaining_directive + _EPS:
                    continue  # would overshoot the directive
                out.append(
                    (
                        server.node.node_id,
                        watts,
                        Item(
                            key=vm.vm_id,
                            size=vm.current_demand,
                            payload=vm,
                        ),
                    )
                )
                remaining_directive -= vm.current_demand
        return out

    def _destination_bins(self, site: Site) -> List[Bin]:
        """Eligible receivers at the destination site, as FFDLR bins.

        Same screening as the intra-site matcher: awake, not deficient,
        not squeezed by the unidirectional rule; capacity is the
        surplus minus ``P_min`` and the WAN cost the move will charge.
        """
        wan_power, _ = self._wan_cost(site)
        config = site.config
        controller = site.controller
        planner = controller.migration_planner
        bins: List[Bin] = []
        for node_id in sorted(controller.servers):
            server = controller.servers[node_id]
            if not server.is_awake:
                continue
            if server.raw_demand > server.budget + _EPS:
                continue
            if planner._squeezed(server, controller.internals):
                continue
            capacity = (
                server.budget - server.raw_demand - config.p_min - wan_power
            )
            if capacity > _EPS:
                bins.append(Bin(key=node_id, capacity=capacity))
        return bins

    def _execute_transfer(self, transfer: Transfer, now: float) -> None:
        src_site = self._by_name[transfer.src]
        dst_site = self._by_name[transfer.dst]
        items = (
            self._preshed_candidates(src_site, transfer.watts)
            if transfer.preemptive
            else self._shed_candidates(src_site, transfer.watts)
        )
        if not items:
            return
        bins = self._destination_bins(dst_site)
        if not bins:
            return
        src_of = {
            item.key: (node_id, deficit) for node_id, deficit, item in items
        }
        result = ffdlr_pack([item for _node, _deficit, item in items], bins)
        for bin_ in result.bins:
            surplus = bin_.capacity
            for item in bin_.contents:
                src_node, src_deficit = src_of[item.key]
                self._move_vm(
                    item.payload,
                    src_site,
                    src_node,
                    dst_site,
                    bin_.key,
                    now,
                    src_deficit=src_deficit,
                    dst_surplus=surplus,
                )
                surplus -= item.size

    def _move_vm(
        self,
        vm,
        src_site: Site,
        src_node: int,
        dst_site: Site,
        dst_node: int,
        now: float,
        *,
        src_deficit: float,
        dst_surplus: float,
    ) -> None:
        src = src_site.controller.servers[src_node]
        dst = dst_site.controller.servers[dst_node]
        wan_power, wan_ticks = self._wan_cost(dst_site)

        del src.vms[vm.vm_id]
        dst.vms[vm.vm_id] = vm
        src_site.controller.vm_departed(vm)
        dst_site.controller.vm_arrived(vm, dst_node)
        if dst.node.node_id == vm.host_id:
            # Node-id spaces are per-site, so a cross-site move can land
            # on the same numeric id; record the hop without the core
            # same-host guard tripping.
            vm.last_migration_time = now
            vm.host_history.append((now, dst.node.node_id))
        else:
            vm.place(dst.node.node_id, now)
        src.charge_migration_cost(wan_power, wan_ticks)
        dst.charge_migration_cost(wan_power, wan_ticks)
        # The VM's demand stream stays with its *home* placement (the
        # home controller's demand source keeps updating the shared VM
        # object every tick); only the hosting runtime changes hands.
        src_site.controller._vm_by_id.pop(vm.vm_id, None)
        dst_site.controller._vm_by_id[vm.vm_id] = vm

        src_site.vms_sent += 1
        src_site.watts_sent += vm.current_demand
        dst_site.vms_received += 1
        dst_site.watts_received += vm.current_demand

        record = CrossSiteMigration(
            time=now,
            vm_id=vm.vm_id,
            src_site=src_site.name,
            dst_site=dst_site.name,
            src_node=src_node,
            dst_node=dst_node,
            demand=vm.current_demand,
            wan_cost_power=wan_power,
            src_deficit=src_deficit,
            dst_surplus=dst_surplus,
        )
        self.cross_migrations.append(record)
        if self.tracer.enabled:
            self.tracer.record_federation_migration(
                vm.vm_id,
                src_site.name,
                dst_site.name,
                src_node,
                dst_node,
                vm.current_demand,
                src_deficit,
                dst_surplus,
                wan_power,
            )

    # --------------------------------------------------- checkpoint/restore
    def snapshot_state(self) -> Dict:
        """Capture the whole federation between ticks.

        Per-site controller snapshots plus the coordinator's own run
        state, in one structure: pickling it as a single payload
        preserves VM object identity across sites, so a VM hosted away
        from home is restored as *one* object referenced by both its
        home placement and the hosting server's runtime.
        """
        state = {
            "controller": type(self).__name__,
            "tick": self._tick_index,
            "sites": [
                {
                    "name": site.name,
                    "controller": site.controller.snapshot_state(),
                    "vms_received": site.vms_received,
                    "vms_sent": site.vms_sent,
                    "watts_received": site.watts_received,
                    "watts_sent": site.watts_sent,
                }
                for site in self.sites
            ],
            "cross_migrations": list(self.cross_migrations),
            "transfer_log": list(self.transfer_log),
        }
        if self._planner is not None or self.federation.cooling is not None:
            state["planner"] = {
                "planner": (
                    self._planner.state_dict()
                    if self._planner is not None
                    else None
                ),
                "setpoint_log": list(self.setpoint_log),
                "sites": {
                    site.name: {
                        "setpoint": site.setpoint,
                        "overhead": (
                            site.actuated_supply.overhead
                            if site.actuated_supply is not None
                            else None
                        ),
                    }
                    for site in self.sites
                },
            }
        return state

    def restore_state(self, state: Dict) -> None:
        """Overlay a snapshot onto a freshly built, identical federation.

        The coordinator must have been rebuilt from the same site specs
        (same names, same order, same ``n_ticks`` horizon — battery
        buffering is precomputed over the run horizon at build time).
        """
        from repro.checkpoint.errors import CheckpointError

        names = [entry["name"] for entry in state["sites"]]
        if names != [site.name for site in self.sites]:
            raise CheckpointError(
                f"snapshot sites {names} do not match this federation "
                f"({[site.name for site in self.sites]})"
            )
        self._tick_index = int(state["tick"])
        for site, entry in zip(self.sites, state["sites"]):
            site.controller.restore_state(entry["controller"])
            site.vms_received = entry["vms_received"]
            site.vms_sent = entry["vms_sent"]
            site.watts_received = entry["watts_received"]
            site.watts_sent = entry["watts_sent"]
        self.cross_migrations[:] = state["cross_migrations"]
        self.transfer_log[:] = state["transfer_log"]
        extra = state.get("planner")
        if extra is None:
            return
        if extra["planner"] is not None:
            if self._planner is None:
                raise CheckpointError(
                    "snapshot carries predictive-planner state but this "
                    "federation was not built with a forecast-aware "
                    "policy and positive horizon"
                )
            self._planner.load_state_dict(extra["planner"])
        self.setpoint_log[:] = extra["setpoint_log"]
        for site in self.sites:
            entry = extra["sites"].get(site.name)
            if entry is None:
                continue
            # Per-server thermal state was already restored with the
            # controller snapshot; only the standing-setpoint label and
            # the charged overhead live on the Site.
            site.setpoint = entry["setpoint"]
            if (
                site.actuated_supply is not None
                and entry["overhead"] is not None
            ):
                site.actuated_supply.overhead = entry["overhead"]

    # ------------------------------------------------------------ helpers
    def site(self, name: str) -> Site:
        """Look up a site by name."""
        return self._by_name[name]

    def total_cross_watts(self) -> float:
        """Total demand (W) shifted across sites over the run."""
        return float(sum(m.demand for m in self.cross_migrations))


def build_federation(
    specs: Sequence[SiteSpec],
    *,
    n_ticks: int = 100,
    policy: Union[str, Callable] = "neutral",
    wan_cost_power: Optional[float] = None,
    wan_cost_ticks: Optional[int] = None,
    margin: Optional[float] = None,
    horizon: int = 0,
    discount: float = 0.6,
    cooling: Optional[CoolingControl] = None,
    forecast: Union[str, ForecastModel, None] = "oracle",
    tracer: Optional[Tracer] = None,
    vectorized: bool = False,
    site_tracer: Optional[Tracer] = None,
) -> FederationCoordinator:
    """Build a geo-federation without running it.

    Each :class:`SiteSpec` becomes a self-contained Willow instance
    (VM ids renumbered to be federation-unique; the first site keeps
    offset 0, preserving the single-site equivalence contract).

    ``vectorized=True`` builds every eligible site on the array-based
    controller and returns a
    :class:`~repro.federation.vectorized.BatchedFederationCoordinator`
    whose per-tick hot path sweeps one shared
    :class:`~repro.core.fleet.FederationFleet` block across all sites
    at once (fault-schedule sites keep their scalar controller and
    tick scalar inside the batch).
    """
    if n_ticks < 1:
        raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
    sites: List[Site] = []
    offset = 0
    for spec in specs:
        if vectorized and not spec.vectorized:
            from dataclasses import replace

            spec = replace(spec, vectorized=True)
        site = build_site(
            spec, n_ticks=n_ticks, vm_id_offset=offset, tracer=site_tracer
        )
        offset += len(site.controller.placement.vms)
        sites.append(site)
    config = FederationConfig(
        policy=policy,
        wan_cost_power=wan_cost_power,
        wan_cost_ticks=wan_cost_ticks,
        margin=margin,
        horizon=horizon,
        discount=discount,
        cooling=cooling,
        forecast=forecast,
    )
    if vectorized:
        from repro.federation.vectorized import BatchedFederationCoordinator

        return BatchedFederationCoordinator(
            sites, federation=config, tracer=tracer
        )
    return FederationCoordinator(sites, federation=config, tracer=tracer)


def run_federation(
    specs: Sequence[SiteSpec],
    *,
    n_ticks: int = 100,
    policy: Union[str, Callable] = "neutral",
    wan_cost_power: Optional[float] = None,
    wan_cost_ticks: Optional[int] = None,
    margin: Optional[float] = None,
    horizon: int = 0,
    discount: float = 0.6,
    cooling: Optional[CoolingControl] = None,
    forecast: Union[str, ForecastModel, None] = "oracle",
    tracer: Optional[Tracer] = None,
    vectorized: bool = False,
) -> FederationCoordinator:
    """Build and run a geo-federation in one call.

    See :func:`build_federation` for the construction contract.
    Returns the finished :class:`FederationCoordinator`; summarise it
    with :func:`repro.metrics.federation.summarize_federation`.
    """
    coordinator = build_federation(
        specs,
        n_ticks=n_ticks,
        policy=policy,
        wan_cost_power=wan_cost_power,
        wan_cost_ticks=wan_cost_ticks,
        margin=margin,
        horizon=horizon,
        discount=discount,
        cooling=cooling,
        forecast=forecast,
        tracer=tracer,
        vectorized=vectorized,
    )
    return coordinator.run(n_ticks)
