"""Supply-aware load-shifting policies for the federation coordinator.

On every supply period the coordinator snapshots each site's state into
a :class:`SiteStatus` (delivered supply, Eq. 4 smoothed demand, the
headroom/deficit they imply, and the site's carbon/price signals) and
asks a policy to turn those into :class:`Transfer` directives -- "move
up to W watts of VM load from site A to site B".

Policies are pure functions of the statuses; they never touch
controllers.  The coordinator is responsible for realising directives
as actual VM moves (FFDLR repack with WAN cost), so a policy may ask
for more watts than whole-VM granularity can deliver.

Shipped policies:

* ``neutral``        -- never shifts; the bit-exactness baseline.
* ``proportional``   -- each deficit draws from every surplus site in
  proportion to its headroom.
* ``greedy-greenest``-- deficits fill from the lowest-carbon surplus
  site first.
* ``price-aware``    -- deficits fill from the cheapest surplus site
  first, and only when it is no more expensive than the deficit site.
* ``predictive``     -- receding-horizon MPC over each site's supply
  forecast and battery plan (:mod:`repro.federation.predictive`);
  ``horizon=0`` degrades exactly to ``proportional``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

__all__ = [
    "SiteStatus",
    "Transfer",
    "POLICIES",
    "policy",
    "register_policy",
    "unregister_policy",
    "as_policy",
    "neutral",
    "proportional",
    "greedy_greenest",
    "price_aware",
    "predictive",
]

_EPS = 1e-9

#: Policy registry keyed by CLI/experiment slug; populated by the
#: :func:`policy` decorator below (shipped policies) and by
#: :func:`register_policy` (learned policies, see :mod:`repro.gym`).
POLICIES: Dict[str, Callable[..., List[Transfer]]] = {}


def policy(name: str, *, forecast_aware: bool = False) -> Callable:
    """Register a federation policy under ``name``.

    This is the *whole* policy protocol: a policy is a callable
    ``fn(statuses, margin=...) -> List[Transfer]`` carrying two explicit
    attributes the coordinator reads --

    * ``policy_name`` -- the registry slug;
    * ``forecast_aware`` -- ``True`` selects the stateful
      :class:`~repro.federation.predictive.PredictivePlanner` drive
      path when the federation's ``horizon`` is positive, in which case
      the callable is invoked with the full planner signature
      (``horizon``, ``forecasts``, ``discount``, ``step``,
      ``wan_break_even``, ``plan``) in addition to ``statuses`` and
      ``margin``.

    Learned policies (:class:`repro.gym.agents.LearnedPolicy`) register
    through exactly the same decorator machinery, so they run under the
    normal coordinator, the batched fleet and the experiments harness
    without special cases.
    """
    def decorate(fn: Callable) -> Callable:
        fn.policy_name = name
        fn.forecast_aware = forecast_aware
        POLICIES[name] = fn
        return fn

    return decorate


def register_policy(
    name: str, fn: Callable, *, forecast_aware: bool = False
) -> Callable:
    """Imperative form of the :func:`policy` decorator.

    Unlike the decorator (shipped policies, import-time, collisions are
    bugs), runtime registration refuses to silently shadow an existing
    slug.
    """
    if name in POLICIES:
        raise ValueError(f"policy {name!r} is already registered")
    return policy(name, forecast_aware=forecast_aware)(fn)


def unregister_policy(name: str) -> None:
    """Remove a runtime-registered policy (no-op for unknown names)."""
    POLICIES.pop(name, None)


def as_policy(fn: Callable) -> Callable:
    """Normalise a bare callable to the policy protocol.

    Callables passed straight to ``FederationConfig(policy=...)`` --
    closures in tests, ad-hoc lambdas -- may not carry the protocol
    attributes.  Stamp conservative defaults so the coordinator can
    read ``fn.forecast_aware`` unconditionally; objects with read-only
    attribute namespaces are wrapped instead.
    """
    if hasattr(fn, "forecast_aware"):
        return fn
    try:
        fn.forecast_aware = False
        if not hasattr(fn, "policy_name"):
            fn.policy_name = getattr(fn, "__name__", "custom")
    except (AttributeError, TypeError):
        wrapped = lambda statuses, **kwargs: fn(statuses, **kwargs)  # noqa: E731
        wrapped.forecast_aware = False
        wrapped.policy_name = getattr(fn, "__name__", "custom")
        return wrapped
    return fn


@dataclass(frozen=True)
class SiteStatus:
    """One site's supply-period snapshot, as policies see it."""

    name: str
    supply: float  # delivered (post-UPS) watts
    smoothed_demand: float  # Eq. 4 smoothed wall watts
    carbon: float  # carbon intensity signal
    price: float  # energy price signal

    @property
    def headroom(self) -> float:
        """Spare watts (negative when the site is in deficit)."""
        return self.supply - self.smoothed_demand

    @property
    def deficit(self) -> float:
        """Unmet smoothed demand (zero when the site has headroom)."""
        return max(-self.headroom, 0.0)


@dataclass(frozen=True)
class Transfer:
    """A directive to shift ``watts`` of VM load ``src`` -> ``dst``.

    ``preemptive`` marks a *predictive* shift: the source has headroom
    right now but its forecast shows a deficit ahead, so the
    coordinator sheds from its least-headroom servers instead of the
    (empty) set of over-budget ones.
    """

    src: str
    dst: str
    watts: float
    preemptive: bool = False

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("transfer source and destination are the same")
        if self.watts <= 0:
            raise ValueError(f"transfer watts must be positive, got {self.watts}")


def _split(
    statuses: Sequence[SiteStatus], margin: float
) -> tuple[List[SiteStatus], Dict[str, float]]:
    """Deficit sites (worst first) and donatable headroom per surplus site.

    ``margin`` is reserved at every donor: a site only donates watts
    beyond it, the federation-level analogue of the paper's ``P_min``
    power margin that prevents shift ping-pong.
    """
    deficits = sorted(
        (s for s in statuses if s.deficit > _EPS),
        key=lambda s: (-s.deficit, s.name),
    )
    donatable = {
        s.name: s.headroom - margin
        for s in statuses
        if s.headroom - margin > _EPS
    }
    return deficits, donatable


@policy("neutral")
def neutral(
    statuses: Sequence[SiteStatus], *, margin: float = 0.0
) -> List[Transfer]:
    """Never shift anything (isolated sites; the equivalence contract)."""
    return []


@policy("proportional")
def proportional(
    statuses: Sequence[SiteStatus], *, margin: float = 0.0
) -> List[Transfer]:
    """Spread each deficit over all donors pro rata to their headroom."""
    deficits, donatable = _split(statuses, margin)
    transfers: List[Transfer] = []
    for needy in deficits:
        total = sum(donatable.values())
        if total <= _EPS:
            break
        want = min(needy.deficit, total)
        # Shares computed against the *current* pool so later deficit
        # sites see what earlier ones left behind.
        shares = {
            name: room / total for name, room in sorted(donatable.items())
        }
        for name, share in shares.items():
            watts = min(want * share, donatable[name])
            if watts <= _EPS:
                continue
            transfers.append(Transfer(src=needy.name, dst=name, watts=watts))
            donatable[name] -= watts
    return transfers


def _ordered_fill(
    statuses: Sequence[SiteStatus],
    margin: float,
    key: Callable[[SiteStatus], tuple],
    eligible: Callable[[SiteStatus, SiteStatus], bool] = lambda needy, donor: True,
) -> List[Transfer]:
    """Greedy fill: each deficit drains donors in ``key`` order."""
    deficits, donatable = _split(statuses, margin)
    by_name = {s.name: s for s in statuses}
    order = [s.name for s in sorted(statuses, key=key) if s.name in donatable]
    transfers: List[Transfer] = []
    for needy in deficits:
        want = needy.deficit
        for name in order:
            if want <= _EPS:
                break
            if not eligible(needy, by_name[name]):
                continue
            watts = min(want, donatable[name])
            if watts <= _EPS:
                continue
            transfers.append(Transfer(src=needy.name, dst=name, watts=watts))
            donatable[name] -= watts
            want -= watts
    return transfers


@policy("greedy-greenest")
def greedy_greenest(
    statuses: Sequence[SiteStatus], *, margin: float = 0.0
) -> List[Transfer]:
    """Fill deficits from the lowest-carbon surplus sites first."""
    return _ordered_fill(statuses, margin, key=lambda s: (s.carbon, s.name))


@policy("price-aware")
def price_aware(
    statuses: Sequence[SiteStatus], *, margin: float = 0.0
) -> List[Transfer]:
    """Fill deficits from the cheapest surplus sites first.

    A donor is only eligible while its energy is no more expensive than
    the deficit site's -- shifting load somewhere pricier would trade a
    QoS loss for a cost increase, which this policy refuses.
    """
    return _ordered_fill(
        statuses,
        margin,
        key=lambda s: (s.price, s.name),
        eligible=lambda needy, donor: donor.price <= needy.price + _EPS,
    )


@policy("predictive", forecast_aware=True)
def predictive(
    statuses: Sequence[SiteStatus], *, margin: float = 0.0, **kwargs
) -> List[Transfer]:
    """Receding-horizon MPC over supply forecasts and battery plans.

    Thin registry shim around
    :func:`repro.federation.predictive.predictive_policy` (the import
    is deferred to keep the registry free of the planner's
    dependencies).  Called with only ``statuses`` -- no forecasts, no
    horizon -- it degrades to :func:`proportional`, so the registry
    entry honours the common policy signature.  ``forecast_aware=True``
    selects the coordinator's :class:`~repro.federation.predictive.
    PredictivePlanner` drive path whenever ``horizon > 0``.
    """
    from repro.federation.predictive import predictive_policy

    return predictive_policy(statuses, margin=margin, **kwargs)
