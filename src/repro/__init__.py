"""Willow: a control system for energy and thermal adaptive computing.

Reproduction of Kant, Murugan & Du, IEEE IPDPS 2011.  The package
implements the complete system described in the paper plus every
substrate it depends on:

* ``repro.sim``        -- discrete-event simulation kernel
* ``repro.thermal``    -- RC thermal model (Eqs. 1-3) + calibration
* ``repro.topology``   -- hierarchical PMU tree + switch fabric
* ``repro.power``      -- power models, supply traces, budget division
* ``repro.workload``   -- applications, VMs, Poisson demand
* ``repro.binpack``    -- FFDLR variable-size bin packing + baselines
* ``repro.core``       -- the Willow controller itself
* ``repro.network``    -- migration traffic / message accounting
* ``repro.baselines``  -- independent / centralized / thermal-blind
* ``repro.metrics``    -- collectors, stability, convergence
* ``repro.experiments``-- one module per paper figure/table

Quickstart::

    from repro.core import run_willow
    controller, metrics = run_willow(target_utilization=0.4, n_ticks=100)
    print(metrics.migration_count(), "migrations")
"""

__version__ = "1.10.0"

from repro.core import WillowConfig, WillowController, run_willow

__all__ = ["WillowConfig", "WillowController", "run_willow", "__version__"]
