"""Crash-safe checkpoint/restore with bit-exact deterministic resume.

Layers:

* :mod:`repro.checkpoint.format` — one checkpoint file: versioned
  magic + JSON header (kind, tick, payload sha256/length, rebuild
  meta) + pickled state, written atomically (tmp + ``os.replace``,
  optional fsync).  Torn or corrupt files are detected by hash before
  the payload is ever unpickled.
* :mod:`repro.checkpoint.store` — a directory of numbered checkpoints
  with a newest-first ``latest_valid()`` recovery scan that skips
  corrupt files instead of failing.
* :mod:`repro.checkpoint.hooks` — :class:`Checkpointer`, an ``on_tick``
  hook snapshotting a controller or federation coordinator on the
  consolidation cadence (``eta2`` ticks).

The state itself comes from ``snapshot_state()``/``restore_state()``
threaded through :class:`~repro.core.controller.WillowController`, its
vectorized and fault-tolerant subclasses,
:class:`~repro.federation.coordinator.FederationCoordinator`, and the
live service's ``LiveSimulation``.  The contract: restore onto a
freshly constructed twin (same construction inputs), then continue —
the resumed run's decisions, collector tables, and
``decision_digest()`` are bit-identical to an uninterrupted run.  See
docs/checkpointing.md.
"""

from repro.checkpoint.errors import CheckpointCorruptError, CheckpointError
from repro.checkpoint.format import (
    CHECKPOINT_VERSION,
    read_checkpoint,
    read_header,
    write_checkpoint,
)
from repro.checkpoint.hooks import Checkpointer
from repro.checkpoint.store import CheckpointStore

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointStore",
    "Checkpointer",
    "read_checkpoint",
    "read_header",
    "write_checkpoint",
]
