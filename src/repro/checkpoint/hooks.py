"""Cadence hooks: snapshot a running controller or federation.

Checkpoints land on the consolidation cadence (``Delta_A = eta2``
ticks) by default — consolidation is the natural epoch boundary: the
drop accumulator has just been reset and no migration plan is in
flight.

Two hook shapes are handled:

* ``WillowController.on_tick`` fires *inside* the tick, before the
  tick counter and clock advance; the hook fixes both up so the stored
  snapshot is a clean between-ticks state (``tick`` = completed ticks,
  ``now`` = the clock the next tick will see).
* ``FederationCoordinator.on_tick`` fires between ticks; the snapshot
  is stored as-is.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.checkpoint.store import CheckpointStore

__all__ = ["Checkpointer"]


class Checkpointer:
    """Saves periodic snapshots of a run into a :class:`CheckpointStore`.

    Usage::

        store = CheckpointStore(directory)
        Checkpointer(store).attach(controller)
        controller.run(n_ticks)

    Attributes
    ----------
    saved:
        Ticks checkpointed so far, in order.
    """

    def __init__(
        self,
        store: CheckpointStore,
        *,
        every: Optional[int] = None,
        kind: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        if every is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.store = store
        self.every = every
        self.kind = kind
        self.meta = dict(meta or {})
        self.saved: List[int] = []

    def _save(self, kind: str, tick: int, state: Dict[str, Any]) -> None:
        self.store.save(kind=self.kind or kind, tick=tick, state=state, meta=self.meta)
        self.saved.append(tick)

    def attach(self, target) -> "Checkpointer":
        """Register on ``target.on_tick``; returns self for chaining.

        ``target`` is a :class:`~repro.core.controller.WillowController`
        (any subclass) or a
        :class:`~repro.federation.coordinator.FederationCoordinator`.
        """
        if hasattr(target, "sites"):  # federation coordinator
            if self.every is None:
                self.every = target.sites[0].config.eta2

            def federation_hook(coordinator, completed: int) -> None:
                if completed % self.every:
                    return
                state = coordinator.snapshot_state()
                self._save("federation", completed, state)

            target.on_tick.append(federation_hook)
        else:
            if self.every is None:
                self.every = target.config.eta2

            def controller_hook(controller, tick_index: int, now: float) -> None:
                completed = tick_index + 1
                if completed % self.every:
                    return
                state = controller.snapshot_state()
                # on_tick runs before the counter/clock advance; store
                # the state the next tick will start from.  The clock
                # arithmetic matches Environment exactly (one float add
                # of delta_d), so resume reproduces the same timestamps.
                state["tick"] = completed
                state["now"] = now + controller.config.delta_d
                self._save("controller", completed, state)

            target.on_tick.append(controller_hook)
        return self
