"""On-disk checkpoint format: versioned, hashed, atomically replaced.

A checkpoint file is::

    willow-checkpoint 1\n
    {json header}\n
    <payload bytes>

The header records the payload's exact byte length and sha256 so a torn
or bit-flipped file is detected *before* the payload is unpickled; the
pickle is never touched unless the hash verifies.  Files are written to
a temporary sibling and published with ``os.replace`` so readers only
ever observe complete checkpoints; ``fsync=True`` additionally syncs
the file and its directory for durability across power loss.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

from repro.checkpoint.errors import CheckpointCorruptError, CheckpointError

__all__ = [
    "CHECKPOINT_VERSION",
    "MAGIC",
    "write_checkpoint",
    "read_checkpoint",
    "read_header",
]

CHECKPOINT_VERSION = 1
MAGIC = b"willow-checkpoint 1\n"


def write_checkpoint(
    path: Path,
    *,
    kind: str,
    tick: int,
    state: Any,
    meta: Optional[Dict[str, Any]] = None,
    fsync: bool = False,
) -> Dict[str, Any]:
    """Atomically write ``state`` to ``path``; returns the header written."""
    path = Path(path)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "version": CHECKPOINT_VERSION,
        "kind": str(kind),
        "tick": int(tick),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "meta": dict(meta or {}),
    }
    blob = MAGIC + json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload

    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(blob)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        directory = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(directory)
        finally:
            os.close(directory)
    return header


def _read_header(handle) -> Dict[str, Any]:
    magic = handle.readline()
    if magic != MAGIC:
        raise CheckpointCorruptError(
            f"not a willow checkpoint (bad magic {magic[:32]!r})"
        )
    raw = handle.readline()
    if not raw.endswith(b"\n"):
        raise CheckpointCorruptError("torn checkpoint header")
    try:
        header = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointCorruptError(f"undecodable checkpoint header: {error}") from None
    if not isinstance(header, dict):
        raise CheckpointCorruptError("checkpoint header is not an object")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return header


def read_header(path: Path) -> Dict[str, Any]:
    """Read and validate only the header of ``path`` (payload untouched)."""
    with Path(path).open("rb") as handle:
        return _read_header(handle)


def read_checkpoint(path: Path) -> Dict[str, Any]:
    """Read, verify, and unpickle ``path``.

    Returns ``{"version", "kind", "tick", "meta", "state", "path"}``.
    Raises :class:`CheckpointCorruptError` on any integrity failure and
    :class:`CheckpointError` on a version this build cannot read.
    """
    path = Path(path)
    with path.open("rb") as handle:
        header = _read_header(handle)
        expected_bytes = header.get("payload_bytes")
        expected_sha = header.get("payload_sha256")
        if not isinstance(expected_bytes, int) or not isinstance(expected_sha, str):
            raise CheckpointCorruptError("checkpoint header missing payload digest")
        payload = handle.read(expected_bytes + 1)
    if len(payload) < expected_bytes:
        raise CheckpointCorruptError(
            f"torn checkpoint payload: expected {expected_bytes} bytes, "
            f"found {len(payload)}"
        )
    if len(payload) > expected_bytes:
        raise CheckpointCorruptError(
            f"trailing bytes after checkpoint payload ({expected_bytes} expected)"
        )
    actual_sha = hashlib.sha256(payload).hexdigest()
    if actual_sha != expected_sha:
        raise CheckpointCorruptError(
            f"checkpoint hash mismatch: header says {expected_sha[:12]}..., "
            f"payload is {actual_sha[:12]}..."
        )
    try:
        state = pickle.loads(payload)
    except Exception as error:  # hash passed but pickle won't load
        raise CheckpointCorruptError(f"unreadable checkpoint payload: {error}") from None
    return {
        "version": header["version"],
        "kind": header["kind"],
        "tick": header["tick"],
        "meta": header.get("meta", {}),
        "state": state,
        "path": path,
    }
