"""Directory of numbered checkpoints with corrupt-skip recovery scan.

A :class:`CheckpointStore` owns one directory of
``checkpoint-<tick>.wck`` files.  Writers call :meth:`save` on the
consolidation cadence; recovery calls :meth:`latest_valid`, which walks
the directory newest-first, *verifies* each candidate (magic, header,
payload length, sha256) and silently falls back past corrupt or torn
files — a half-written or bit-rotted newest checkpoint degrades the
restart point by one cadence instead of poisoning the resume.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint.errors import CheckpointError
from repro.checkpoint.format import read_checkpoint, write_checkpoint

__all__ = ["CheckpointStore"]

_FILE_RE = re.compile(r"^checkpoint-(\d{10})\.wck$")


class CheckpointStore:
    """Numbered checkpoints under one directory.

    Parameters
    ----------
    directory:
        Created (with parents) on first use.
    fsync:
        Forwarded to :func:`write_checkpoint` for crash durability.
    keep:
        If set, prune to the ``keep`` newest checkpoints after each save.
    """

    def __init__(
        self,
        directory: Path,
        *,
        fsync: bool = False,
        keep: Optional[int] = None,
    ):
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.fsync = fsync
        self.keep = keep

    def path_for(self, tick: int) -> Path:
        return self.directory / f"checkpoint-{int(tick):010d}.wck"

    def ticks(self) -> List[int]:
        """Ticks with a checkpoint file present, ascending (unverified)."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _FILE_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def save(
        self,
        *,
        kind: str,
        tick: int,
        state: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write one checkpoint atomically; prunes old ones if configured."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(tick)
        write_checkpoint(
            path, kind=kind, tick=tick, state=state, meta=meta, fsync=self.fsync
        )
        if self.keep is not None:
            for old in self.ticks()[: -self.keep]:
                self.path_for(old).unlink(missing_ok=True)
        return path

    def load(self, tick: int) -> Dict[str, Any]:
        """Read and verify the checkpoint for ``tick``."""
        path = self.path_for(tick)
        if not path.exists():
            raise CheckpointError(f"no checkpoint for tick {tick} in {self.directory}")
        return read_checkpoint(path)

    def latest_valid(
        self, *, max_tick: Optional[int] = None
    ) -> Optional[Dict[str, Any]]:
        """Newest verified checkpoint (``tick <= max_tick`` if given).

        Corrupt or torn candidates are skipped, newest-first; the
        returned document gains a ``"skipped"`` key listing
        ``(path, reason)`` for every file passed over, so callers can
        surface the fallback instead of diverging silently.  Returns
        ``None`` when no valid checkpoint exists.
        """
        skipped: List[Tuple[Path, str]] = []
        for tick in reversed(self.ticks()):
            if max_tick is not None and tick > max_tick:
                continue
            path = self.path_for(tick)
            try:
                document = read_checkpoint(path)
            except CheckpointError as error:
                skipped.append((path, str(error)))
                continue
            if document["tick"] != tick:
                skipped.append(
                    (path, f"filename tick {tick} != header tick {document['tick']}")
                )
                continue
            document["skipped"] = skipped
            return document
        return None
