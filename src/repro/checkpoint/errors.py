"""Checkpoint error hierarchy.

Kept dependency-free so controller modules can raise these without
importing the rest of the checkpoint machinery.
"""

from __future__ import annotations

__all__ = ["CheckpointError", "CheckpointCorruptError"]


class CheckpointError(Exception):
    """Any checkpoint failure: unsupported state, bad version, no snapshot."""


class CheckpointCorruptError(CheckpointError):
    """The file on disk is not a readable, integrity-verified checkpoint.

    Raised for a missing or wrong magic line, an undecodable header, a
    payload shorter than the header promises (torn write), or a sha256
    mismatch.  Callers scanning a checkpoint directory treat this as
    "skip and fall back to the previous snapshot", never as fatal.
    """
