"""Physical fault injection and sensor-fault-tolerant control.

Public surface:

* :mod:`repro.plant_faults.schedule` -- deterministic fault windows
  (crashes, sensor faults, cooling degradation, circuit trips) and the
  seeded :func:`random_plant_schedule` generator.
* :mod:`repro.plant_faults.sensors` -- the :class:`SensorBank` between
  plant and controller, with validation and quarantine.
* :mod:`repro.plant_faults.controller` -- the
  :class:`FaultTolerantWillowController` and the one-call
  :func:`run_resilient` runner.

See docs/resilience.md for the design and the safety argument.
"""

from repro.plant_faults.controller import (
    FaultTolerantWillowController,
    run_resilient,
)
from repro.plant_faults.schedule import (
    SENSOR_DRIFT,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    SENSOR_STUCK,
    CircuitTrip,
    CoolingDegradation,
    PlantFaultSchedule,
    SensorFault,
    ServerCrash,
    random_plant_schedule,
)
from repro.plant_faults.sensors import SensorBank, SensorValidatorConfig

__all__ = [
    "FaultTolerantWillowController",
    "run_resilient",
    "SENSOR_DRIFT",
    "SENSOR_DROPOUT",
    "SENSOR_NOISE",
    "SENSOR_STUCK",
    "CircuitTrip",
    "CoolingDegradation",
    "PlantFaultSchedule",
    "SensorFault",
    "ServerCrash",
    "random_plant_schedule",
    "SensorBank",
    "SensorValidatorConfig",
]
