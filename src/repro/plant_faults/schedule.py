"""Deterministic physical-plant fault schedules.

Where :mod:`repro.control_plane.faults` breaks the *messages*, this
module breaks the *hardware*: servers crash and restart, thermal
sensors lie (stuck-at, drift, additive noise, dropout), CRAC units
derate and let the rack-inlet ambient ramp up, and branch circuits trip
and zero a subtree's budget.  Every fault is a half-open tick interval
over named tree nodes, so a schedule is reproducible from its literal
contents; :func:`random_plant_schedule` draws one from a seed with the
same ``numpy`` generator discipline the rest of the repo uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.topology.tree import Tree

__all__ = [
    "SENSOR_STUCK",
    "SENSOR_DRIFT",
    "SENSOR_NOISE",
    "SENSOR_DROPOUT",
    "ServerCrash",
    "SensorFault",
    "CoolingDegradation",
    "CircuitTrip",
    "PlantFaultSchedule",
    "random_plant_schedule",
]

#: Sensor fault kinds (:class:`SensorFault.kind`).
SENSOR_STUCK = "stuck"  # reading frozen at its value when the fault began
SENSOR_DRIFT = "drift"  # reading ramps away from truth (deg C per tick)
SENSOR_NOISE = "noise"  # additive Gaussian noise (deg C std-dev)
SENSOR_DROPOUT = "dropout"  # no reading at all

_SENSOR_KINDS = (SENSOR_STUCK, SENSOR_DRIFT, SENSOR_NOISE, SENSOR_DROPOUT)


def _check_window(start_tick: int, end_tick: int) -> None:
    if start_tick < 0:
        raise ValueError("start_tick must be >= 0")
    if end_tick <= start_tick:
        raise ValueError("end_tick must exceed start_tick")


@dataclass(frozen=True)
class ServerCrash:
    """One server outage: hard-down for ticks in ``[start_tick, end_tick)``.

    The server draws zero watts and serves nothing; hosted VMs stay
    stranded until the controller evacuates them.  At ``end_tick`` the
    server restarts through the S3/S4 resume latency.
    """

    server_id: int
    start_tick: int
    end_tick: int

    def __post_init__(self) -> None:
        _check_window(self.start_tick, self.end_tick)

    def covers(self, tick: int) -> bool:
        return self.start_tick <= tick < self.end_tick


@dataclass(frozen=True)
class SensorFault:
    """One thermal-sensor fault window on one server.

    ``magnitude`` is kind-specific: deg C per tick for ``drift``, the
    Gaussian std-dev in deg C for ``noise``; ``stuck`` and ``dropout``
    ignore it.
    """

    server_id: int
    start_tick: int
    end_tick: int
    kind: str
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self.start_tick, self.end_tick)
        if self.kind not in _SENSOR_KINDS:
            raise ValueError(
                f"kind must be one of {_SENSOR_KINDS}, got {self.kind!r}"
            )
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")

    def covers(self, tick: int) -> bool:
        return self.start_tick <= tick < self.end_tick


@dataclass(frozen=True)
class CoolingDegradation:
    """A CRAC derate over ``[start_tick, end_tick)``.

    ``derate`` in (0, 1] is the lost cooling fraction; the affected
    rack-inlet ambient ramps linearly toward
    :meth:`CoolingModel.degraded_supply_temperature` over ``ramp_ticks``
    ticks and ramps back down after ``end_tick`` (thermal mass -- the
    room neither heats nor cools instantly).  ``zone_id`` names the
    subtree whose servers sit in the affected zone; ``None`` degrades
    the whole facility.
    """

    start_tick: int
    end_tick: int
    derate: float
    zone_id: Optional[int] = None
    ramp_ticks: int = 4

    def __post_init__(self) -> None:
        _check_window(self.start_tick, self.end_tick)
        if not 0.0 < self.derate <= 1.0:
            raise ValueError(f"derate must be in (0, 1], got {self.derate}")
        if self.ramp_ticks < 1:
            raise ValueError("ramp_ticks must be >= 1")

    def effective_derate(self, tick: int) -> float:
        """Ramp-shaped derate at ``tick`` (0 when fully recovered)."""
        if tick < self.start_tick:
            return 0.0
        if tick < self.end_tick:
            frac = (tick - self.start_tick + 1) / self.ramp_ticks
        else:
            frac = 1.0 - (tick - self.end_tick + 1) / self.ramp_ticks
        return self.derate * min(max(frac, 0.0), 1.0)


@dataclass(frozen=True)
class CircuitTrip:
    """A branch-circuit trip: the subtree under ``node_id`` has zero
    budget for ticks in ``[start_tick, end_tick)``.

    Servers ride the outage through on their static draw (local UPS);
    the allocator sees a zero cap for the subtree, so every VM under it
    is shed to surplus elsewhere through the ordinary deficit-driven
    migration machinery.
    """

    node_id: int
    start_tick: int
    end_tick: int

    def __post_init__(self) -> None:
        _check_window(self.start_tick, self.end_tick)

    def covers(self, tick: int) -> bool:
        return self.start_tick <= tick < self.end_tick


@dataclass(frozen=True)
class PlantFaultSchedule:
    """A deterministic set of physical faults for one run."""

    crashes: Tuple[ServerCrash, ...] = ()
    sensor_faults: Tuple[SensorFault, ...] = ()
    cooling: Tuple[CoolingDegradation, ...] = ()
    trips: Tuple[CircuitTrip, ...] = ()

    @property
    def empty(self) -> bool:
        return not (
            self.crashes or self.sensor_faults or self.cooling or self.trips
        )

    def is_crashed(self, server_id: int, tick: int) -> bool:
        """Is the server hard-down at ``tick``?"""
        return any(
            c.server_id == server_id and c.covers(tick) for c in self.crashes
        )

    def sensor_faults_at(
        self, server_id: int, tick: int
    ) -> Tuple[SensorFault, ...]:
        """Active sensor faults on one server at ``tick``."""
        return tuple(
            f
            for f in self.sensor_faults
            if f.server_id == server_id and f.covers(tick)
        )

    def tripped_roots(self, tick: int) -> Tuple[int, ...]:
        """Distinct subtree roots with an active trip at ``tick``, sorted."""
        return tuple(
            sorted({t.node_id for t in self.trips if t.covers(tick)})
        )


def random_plant_schedule(
    tree: Tree,
    *,
    seed: int,
    horizon_ticks: int,
    n_crashes: int = 0,
    n_sensor_faults: int = 0,
    n_cooling_events: int = 0,
    n_circuit_trips: int = 0,
    min_duration: int = 4,
    max_duration: int = 12,
    max_derate: float = 1.0,
) -> PlantFaultSchedule:
    """Draw a reproducible plant-fault schedule for one run.

    Crash and sensor-fault victims are drawn among the servers, trip
    victims among non-root internal nodes (tripping the root breaker
    blacks out the whole facility -- build that by hand if you want
    it), and cooling zones among internal nodes with the whole facility
    as one more option.  Windows are uniform in ``[min_duration,
    max_duration]`` ticks and start early enough to recover before
    ``horizon_ticks`` when possible, so runs observe fault *and*
    recovery.
    """
    if horizon_ticks < 1:
        raise ValueError("horizon_ticks must be >= 1")
    if not 1 <= min_duration <= max_duration:
        raise ValueError("need 1 <= min_duration <= max_duration")
    if not 0.0 < max_derate <= 1.0:
        raise ValueError("max_derate must be in (0, 1]")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x9FA17]))
    server_ids = [s.node_id for s in tree.servers()]
    internal_ids = [
        n.node_id for n in tree if not n.is_leaf and not n.is_root
    ]

    def window(pool) -> tuple:
        victim = int(rng.choice(pool)) if pool else None
        duration = int(rng.integers(min_duration, max_duration + 1))
        latest = max(horizon_ticks - duration, 1)
        start = int(rng.integers(0, latest))
        return victim, start, start + duration

    crashes = []
    for _ in range(n_crashes):
        victim, start, end = window(server_ids)
        crashes.append(ServerCrash(victim, start, end))

    sensor_faults = []
    for _ in range(n_sensor_faults):
        victim, start, end = window(server_ids)
        kind = _SENSOR_KINDS[int(rng.integers(0, len(_SENSOR_KINDS)))]
        if kind == SENSOR_DRIFT:
            magnitude = float(rng.uniform(0.3, 1.5))
        elif kind == SENSOR_NOISE:
            magnitude = float(rng.uniform(0.5, 3.0))
        else:
            magnitude = 0.0
        sensor_faults.append(SensorFault(victim, start, end, kind, magnitude))

    cooling = []
    for _ in range(n_cooling_events):
        # Zone pool: every internal node plus "whole facility" (None).
        pool = internal_ids + [None]
        zone = pool[int(rng.integers(0, len(pool)))]
        _victim, start, end = window(server_ids)
        derate = float(rng.uniform(0.3, max_derate))
        cooling.append(
            CoolingDegradation(start, end, derate, zone_id=zone)
        )

    trips = []
    for _ in range(n_circuit_trips):
        if not internal_ids:
            break
        victim, start, end = window(internal_ids)
        trips.append(CircuitTrip(victim, start, end))

    return PlantFaultSchedule(
        crashes=tuple(crashes),
        sensor_faults=tuple(sensor_faults),
        cooling=tuple(cooling),
        trips=tuple(trips),
    )
