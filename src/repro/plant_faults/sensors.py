"""Thermal-sensor fault models, validation and quarantine.

The :class:`SensorBank` sits between the physical plant and the
controller: every temperature the controller consumes passes through
it.  Each tick it

1. advances a per-server **open-loop RC prediction** -- Eq. 1 driven by
   the commanded wall power, never by measurements, so a lying sensor
   cannot poison it;
2. applies the scheduled sensor faults to the plant truth to produce
   the **measured** value (or ``None`` on dropout);
3. **validates** the measurement against the RC prediction (the
   residual check), refining the failure reason with a physical range
   check and a rate-of-change check, and quarantines the sensor when
   validation fails.

While a sensor is quarantined the controller runs that server open
loop: budgets derive from the RC prediction plus an uncertainty margin
(:meth:`SensorBank.cap_temperature`), which can only shrink the Eq. 3
cap, so degradation is graceful and never admits a ``T_limit``
violation.  After ``quarantine_ticks`` the measurement is re-validated
and the sensor restored once it agrees with physics again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import WillowConfig
from repro.core.state import ServerRuntime
from repro.plant_faults.schedule import (
    PlantFaultSchedule,
    SENSOR_DRIFT,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    SENSOR_STUCK,
)
from repro.thermal.model import temperature_after

__all__ = ["SensorValidatorConfig", "SensorBank"]


@dataclass(frozen=True)
class SensorValidatorConfig:
    """Tunables for sensor validation and quarantine.

    Attributes
    ----------
    residual_tol:
        Maximum |measured - RC prediction| before the sensor is
        suspect (deg C).  This is the authoritative check: a reading
        the open-loop model corroborates is physics, never a fault.
    min_valid:
        Rejected readings below this (deg C) report reason ``range``.
    range_margin:
        Rejected readings above ``t_limit + range_margin`` report
        reason ``range``.
    max_rate:
        Rejected readings that moved more than this (deg C per tick)
        since the last one report reason ``rate``.
    quarantine_ticks:
        Ticks a quarantined sensor sits out before re-validation.
    uncertainty_margin:
        Deg C added to the open-loop belief while the sensor is
        untrusted; inflating the Eq. 3 starting temperature shrinks the
        cap, which is the conservative direction.
    """

    min_valid: float = 0.0
    range_margin: float = 10.0
    max_rate: float = 40.0
    residual_tol: float = 2.0
    quarantine_ticks: int = 4
    uncertainty_margin: float = 5.0

    def __post_init__(self) -> None:
        if self.range_margin < 0:
            raise ValueError("range_margin must be non-negative")
        if self.max_rate <= 0:
            raise ValueError("max_rate must be positive")
        if self.residual_tol <= 0:
            raise ValueError("residual_tol must be positive")
        if self.quarantine_ticks < 1:
            raise ValueError("quarantine_ticks must be >= 1")
        if self.uncertainty_margin < 0:
            raise ValueError("uncertainty_margin must be non-negative")


class SensorBank:
    """Fault injection plus validation for every server's thermal sensor."""

    def __init__(
        self,
        servers: Dict[int, ServerRuntime],
        config: WillowConfig,
        schedule: PlantFaultSchedule,
        validator: SensorValidatorConfig,
        rng: np.random.Generator,
    ):
        self.config = config
        self.schedule = schedule
        self.validator = validator
        self.rng = rng
        self._mode = config.thermal_mode
        self._window = config.resolved_thermal_window()
        self._dt = config.delta_d
        # Open-loop RC model chain, seeded at each server's initial
        # temperature (its zone ambient).  Advanced from commanded wall
        # power only, so it is immune to sensor faults; with the model
        # matching the plant it reproduces the truth bit for bit, which
        # makes the healthy residual exactly zero.
        self._model_temp: Dict[int, float] = {
            sid: server.thermal.temperature for sid, server in servers.items()
        }
        self._measured: Dict[int, Optional[float]] = {}
        self._trusted: Dict[int, bool] = {sid: True for sid in servers}
        self._quarantine_left: Dict[int, int] = {sid: 0 for sid in servers}
        self._reason: Dict[int, str] = {sid: "" for sid in servers}
        # Stuck-at faults freeze the value observed at onset, keyed by
        # (server, fault window) so repeated windows re-freeze.
        self._stuck_values: Dict[tuple, float] = {}

    # -- fault application -------------------------------------------------
    def _measure(self, server_id: int, truth: float, tick: int) -> Optional[float]:
        """Plant truth filtered through this tick's active sensor faults."""
        faults = self.schedule.sensor_faults_at(server_id, tick)
        if not faults:
            return truth
        if any(f.kind == SENSOR_DROPOUT for f in faults):
            return None
        value = truth
        for fault in faults:
            if fault.kind == SENSOR_STUCK:
                key = (server_id, fault.start_tick)
                if key not in self._stuck_values:
                    self._stuck_values[key] = truth
                value = self._stuck_values[key]
        for fault in faults:
            if fault.kind == SENSOR_DRIFT:
                value += fault.magnitude * (tick - fault.start_tick + 1)
            elif fault.kind == SENSOR_NOISE:
                value += float(self.rng.normal(0.0, fault.magnitude))
        return value

    # -- validation --------------------------------------------------------
    def _validate(
        self,
        server: ServerRuntime,
        measured: Optional[float],
        previous: Optional[float],
        predicted: float,
    ) -> Tuple[bool, str]:
        v = self.validator
        if measured is None:
            return False, "dropout"
        # A reading the open-loop prediction corroborates is physics,
        # never a sensor fault: integrated-mode budget windows
        # legitimately push temperatures far past the nominal range and
        # jump them by tens of degrees per tick.  The residual is thus
        # the authoritative check; range and rate only refine the
        # *reason* once the model has already rejected the reading.
        if abs(measured - predicted) <= v.residual_tol:
            return True, ""
        t_limit = server.thermal_params.t_limit
        if not v.min_valid <= measured <= t_limit + v.range_margin:
            return False, "range"
        if previous is not None and abs(measured - previous) > v.max_rate:
            return False, "rate"
        return False, "residual"

    # -- per-tick observation ----------------------------------------------
    def observe(
        self, server: ServerRuntime, truth: float, wall: float, tick: int
    ) -> List[Tuple[str, str]]:
        """Ingest one tick's reading; return trust transitions.

        ``truth`` is the plant temperature after this tick, ``wall`` the
        wall power that produced it.  Returns ``[("quarantine", reason)]``
        or ``[("restore", "")]`` on a trust transition, else ``[]``.
        """
        sid = server.node.node_id
        params = server.thermal_params
        if self._mode == "window_reset":
            predicted = temperature_after(
                params, params.t_ambient, wall, self._window
            )
        else:
            predicted = temperature_after(
                params, self._model_temp[sid], wall, self._dt
            )
        self._model_temp[sid] = predicted

        previous = self._measured.get(sid)
        measured = self._measure(sid, truth, tick)
        self._measured[sid] = measured
        valid, reason = self._validate(server, measured, previous, predicted)

        transitions: List[Tuple[str, str]] = []
        if self._trusted[sid]:
            if not valid:
                self._trusted[sid] = False
                self._quarantine_left[sid] = self.validator.quarantine_ticks
                self._reason[sid] = reason
                transitions.append(("quarantine", reason))
        else:
            self._quarantine_left[sid] -= 1
            if self._quarantine_left[sid] <= 0:
                if valid:
                    self._trusted[sid] = True
                    self._reason[sid] = ""
                    transitions.append(("restore", ""))
                else:
                    # Still lying: re-arm the quarantine window.
                    self._quarantine_left[sid] = self.validator.quarantine_ticks
                    self._reason[sid] = reason
        return transitions

    # -- controller-facing views -------------------------------------------
    def trusted(self, server_id: int) -> bool:
        return self._trusted[server_id]

    def quarantine_reason(self, server_id: int) -> str:
        return self._reason[server_id]

    def believed_temperature(self, server_id: int) -> float:
        """The controller's belief: the measurement while trusted, the
        open-loop RC prediction while quarantined (or before any
        reading exists)."""
        measured = self._measured.get(server_id)
        if self._trusted[server_id] and measured is not None:
            return measured
        return self._model_temp[server_id]

    def cap_temperature(self, server: ServerRuntime) -> Optional[float]:
        """Eq. 3 starting temperature the allocator should use.

        ``None`` means "use the plant default" -- chosen precisely when
        that default already matches the belief, which keeps a fully
        healthy run bit-identical to the ideal-plant controller.

        While the sensor is untrusted, the open-loop prediction plus
        ``uncertainty_margin`` is used instead.  The prediction equals
        the plant truth (same model, same inputs), so the inflated
        starting temperature can only shrink the cap: conservative by
        construction.
        """
        sid = server.node.node_id
        trusted = self._trusted[sid]
        if self._mode == "window_reset":
            if trusted:
                # Healthy window-reset caps start from the zone ambient
                # regardless of the reading; nothing to override.
                return None
            return (
                server.thermal_params.t_ambient
                + self.validator.uncertainty_margin
            )
        measured = self._measured.get(sid)
        if trusted:
            if measured is None:
                # Before the first reading: the plant default (the
                # integrator's own temperature) is the belief.
                return None
            # Defensive asymmetry: believe whichever is hotter.  With
            # the model exact they coincide; if the plant ever ran
            # hotter than modelled, the hotter belief wins.
            return max(measured, self._model_temp[sid])
        return self._model_temp[sid] + self.validator.uncertainty_margin

    # --------------------------------------------------- checkpoint/restore
    def state_dict(self) -> Dict[str, object]:
        """Snapshot the validation state machine.

        The noise stream is owned by the controller's ``RandomStreams``
        (snapshotted there); the fault schedule is snapshotted by the
        controller, which also rebinds ``self.schedule`` on restore.
        """
        return {
            "model_temp": dict(self._model_temp),
            "measured": dict(self._measured),
            "trusted": dict(self._trusted),
            "quarantine_left": dict(self._quarantine_left),
            "reason": dict(self._reason),
            "stuck_values": dict(self._stuck_values),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._model_temp = dict(state["model_temp"])  # type: ignore[arg-type]
        self._measured = dict(state["measured"])  # type: ignore[arg-type]
        self._trusted = dict(state["trusted"])  # type: ignore[arg-type]
        self._quarantine_left = dict(state["quarantine_left"])  # type: ignore[arg-type]
        self._reason = dict(state["reason"])  # type: ignore[arg-type]
        self._stuck_values = dict(state["stuck_values"])  # type: ignore[arg-type]
