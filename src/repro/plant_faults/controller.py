"""Sensor-fault-tolerant Willow control with graceful degradation.

:class:`FaultTolerantWillowController` subclasses the scalar
:class:`WillowController` through the four plant hooks
(``_begin_tick`` / ``_allocation_due`` / ``_server_cap`` /
``_advance_plant``) plus the ``_may_wake`` veto, so an all-healthy
:class:`PlantFaultSchedule` reproduces the ideal controller's
trajectories bit for bit (the equivalence contract in
``tests/test_plant_faults.py``).

Degradation policies
--------------------
* **Server crashes** hard-stop the runtime (zero watts, VMs stranded);
  the controller evacuates stranded VMs onto surplus servers with the
  existing FFDLR machinery (cause ``EVACUATION``), retrying every tick
  until placed.  Restart pays the S3/S4 resume latency.
* **Thermal emergencies**: when a zone's ambient rises until the Eq. 3
  cap cannot even carry a server's static floor, the server is shut
  down (``thermal_shutdown``) and restarted only once the cap recovers
  with hysteresis.  This check models the on-die protection circuit,
  which acts on the true die temperature even when the management
  sensor is quarantined.
* **Cooling degradation** ramps the affected zone's inlet ambient
  toward :meth:`CoolingModel.degraded_supply_temperature` (clamped just
  below ``T_limit``), shrinking every thermal cap in the zone.
* **Circuit trips** zero the cap of every server under the tripped
  node; the allocator then starves the subtree and the ordinary
  deficit-driven migration path drains it.
* **Sensor faults** are mediated by :class:`SensorBank`: quarantined
  servers run open loop on the RC model with an uncertainty margin.

Every fault transition is recorded as a :class:`PlantEvent` and forces
a supply-side reallocation on the same tick, so stale budgets never
outlive the plant state that justified them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional

from repro.binpack.ffdlr import ffdlr_pack
from repro.binpack.items import Bin, Item
from repro.cooling.model import CoolingModel
from repro.core.config import WillowConfig
from repro.core.controller import WillowController
from repro.core.events import MigrationCause, PlantEvent
from repro.core.migration import PlannedMove
from repro.core.state import ServerRuntime, SleepState
from repro.metrics.collector import MetricsCollector
from repro.plant_faults.schedule import PlantFaultSchedule
from repro.plant_faults.sensors import SensorBank, SensorValidatorConfig
from repro.power.supply import SupplyTrace, constant_supply
from repro.sim.rng import RandomStreams
from repro.topology.tree import Tree
from repro.workload.applications import SIMULATION_APPS
from repro.workload.generator import (
    random_placement,
    scale_for_target_utilization,
)

__all__ = ["FaultTolerantWillowController", "run_resilient"]

_EPS = 1e-9


class FaultTolerantWillowController(WillowController):
    """Willow under physical faults and lying sensors.

    Additional parameters
    ---------------------
    plant_faults:
        The :class:`PlantFaultSchedule` to inject (default: none).
    validator:
        Sensor validation tunables (:class:`SensorValidatorConfig`).
    cooling:
        :class:`CoolingModel` used to translate CRAC derates into
        rack-inlet temperatures.
    outside_temp:
        Outside air temperature (deg C) the degraded cooling mixes in.
    ambient_clamp_headroom:
        Degraded ambients are clamped to ``t_limit - headroom`` so the
        thermal model stays well defined; at the clamp the Eq. 3 cap
        sits below the static floor, which triggers thermal shutdown.
    recovery_margin_w:
        Cap hysteresis (watts above the static floor) required before a
        thermally shut-down server restarts or a sleeping one may wake.
    """

    def __init__(
        self,
        tree,
        config,
        supply,
        placement,
        *,
        plant_faults: Optional[PlantFaultSchedule] = None,
        validator: Optional[SensorValidatorConfig] = None,
        cooling: Optional[CoolingModel] = None,
        outside_temp: float = 35.0,
        ambient_clamp_headroom: float = 2.0,
        recovery_margin_w: float = 5.0,
        **kwargs,
    ):
        super().__init__(tree, config, supply, placement, **kwargs)
        if config.device_classes is not None:
            raise ValueError(
                "plant-fault layer does not support device classes yet; "
                "use the scalar controller"
            )
        if ambient_clamp_headroom <= 0:
            raise ValueError("ambient_clamp_headroom must be positive")
        if recovery_margin_w < 0:
            raise ValueError("recovery_margin_w must be non-negative")
        self.plant_faults = plant_faults or PlantFaultSchedule()
        self.validator = validator or SensorValidatorConfig()
        self.cooling = cooling or CoolingModel()
        self.outside_temp = outside_temp
        self.ambient_clamp_headroom = ambient_clamp_headroom
        self.recovery_margin_w = recovery_margin_w
        # Drawing the stream here never perturbs the others (name-keyed
        # independent generators), so a no-fault run stays bit-exact.
        self.sensors = SensorBank(
            self.servers,
            config,
            self.plant_faults,
            self.validator,
            rng=self.streams["sensor-noise"],
        )
        self._force_allocation = False
        self._crash_down: set = set()
        self._thermal_down: set = set()
        self._active_trip_roots: FrozenSet[int] = frozenset()
        self._tripped_leaves: FrozenSet[int] = frozenset()
        self._base_ambient: Dict[int, float] = {
            sid: server.thermal_params.t_ambient
            for sid, server in self.servers.items()
        }
        # Leaf sets per subtree root, for trips and cooling zones.
        self._subtree_leaves: Dict[int, FrozenSet[int]] = {
            node.node_id: frozenset(
                leaf.node_id for leaf in tree.subtree_leaves(node)
            )
            for node in tree
            if not node.is_leaf
        }
        self._all_leaves: FrozenSet[int] = frozenset(self.servers)

    # ------------------------------------------------------------ plant tick
    def _begin_tick(self, now: float) -> None:
        tick = self._tick_index
        self._apply_cooling(now, tick)
        self._apply_crashes(now, tick)
        self._apply_thermal_protection(now)
        self._apply_trips(now, tick)
        self._evacuate(now)

    def _record_event(self, now: float, kind: str, node_id: int, detail: str = "") -> None:
        self.collector.record_plant_event(
            PlantEvent(time=now, kind=kind, node_id=node_id, detail=detail)
        )

    # -- cooling -----------------------------------------------------------
    def _zone_leaves(self, zone_id: Optional[int]) -> FrozenSet[int]:
        if zone_id is None:
            return self._all_leaves
        if zone_id in self._subtree_leaves:
            return self._subtree_leaves[zone_id]
        if zone_id in self.servers:
            return frozenset((zone_id,))
        raise ValueError(f"unknown cooling zone node id {zone_id}")

    def _apply_cooling(self, now: float, tick: int) -> None:
        """Ramp each zone's ambient to match active CRAC derates."""
        events = self.plant_faults.cooling
        for event in events:
            zone = event.zone_id if event.zone_id is not None else self.tree.root.node_id
            if tick == event.start_tick:
                self._record_event(
                    now, "cooling_degraded", zone, f"derate={event.derate:.2f}"
                )
            elif tick == event.end_tick:
                self._record_event(now, "cooling_restored", zone)
        if not events:
            return
        for sid, server in self.servers.items():
            derate = 0.0
            for event in events:
                if sid in self._zone_leaves(event.zone_id):
                    derate = max(derate, event.effective_derate(tick))
            base = self._base_ambient[sid]
            target = self.cooling.degraded_supply_temperature(
                base, self.outside_temp, derate
            )
            ceiling = server.thermal_params.t_limit - self.ambient_clamp_headroom
            target = min(target, ceiling)
            if abs(target - server.thermal_params.t_ambient) > 1e-12:
                server.set_ambient(target)
                self._force_allocation = True

    def set_base_ambient(
        self, value: float, *, zone_id: Optional[int] = None
    ) -> None:
        """Move the supply-air setpoint for a zone (default: everywhere).

        This is the cooling *actuator* path (the predictive federation
        planner raises setpoints into a crunch), as opposed to the
        cooling *fault* path above.  The two compose: the new base is
        pushed through :meth:`CoolingModel.degraded_supply_temperature`
        at each server's **current** effective derate, so changing the
        setpoint mid-:class:`CoolingDegradation` re-anchors the ramp
        instead of silently resetting it -- the next ``_apply_cooling``
        tick continues ramping from the same new base.
        """
        tick = self._tick_index
        events = self.plant_faults.cooling
        for sid in sorted(self._zone_leaves(zone_id)):
            server = self.servers[sid]
            self._base_ambient[sid] = value
            derate = 0.0
            for event in events:
                if sid in self._zone_leaves(event.zone_id):
                    derate = max(derate, event.effective_derate(tick))
            target = self.cooling.degraded_supply_temperature(
                value, self.outside_temp, derate
            )
            ceiling = server.thermal_params.t_limit - self.ambient_clamp_headroom
            target = min(target, ceiling)
            if abs(target - server.thermal_params.t_ambient) > 1e-12:
                server.set_ambient(target)
                self._force_allocation = True

    # -- crashes -----------------------------------------------------------
    def _apply_crashes(self, now: float, tick: int) -> None:
        if not self.plant_faults.crashes:
            return
        for sid, server in self.servers.items():
            crashed = self.plant_faults.is_crashed(sid, tick)
            if crashed and sid not in self._crash_down:
                self._crash_down.add(sid)
                # A crash preempts any thermal shutdown bookkeeping.
                self._thermal_down.discard(sid)
                if server.sleep_state is not SleepState.FAILED:
                    server.fail()
                self._record_event(now, "server_crash", sid)
                self._force_allocation = True
            elif not crashed and sid in self._crash_down:
                self._crash_down.discard(sid)
                if self._thermally_unsafe(server):
                    # Restart blocked: the zone cannot even carry the
                    # static floor.  Hand over to thermal protection,
                    # which restarts once the cap recovers.
                    self._thermal_down.add(sid)
                else:
                    server.repair()
                    self._record_event(now, "server_restart", sid)
                self._force_allocation = True

    # -- thermal protection ------------------------------------------------
    def _ambient_cap(self, server: ServerRuntime) -> float:
        """Eq. 3 cap for a server *at* its zone ambient.

        The emergency policy keys off the environment, not transient
        load heat: a server that ran itself hot is already throttled by
        the ordinary Eq. 3 cap and cools on its own, but a zone whose
        ambient-cooled cap cannot even carry the static floor has no
        safe operating point at all.  (This is plant truth -- the
        protection circuit knows the zone it sits in regardless of what
        the management-plane sensor claims.)
        """
        return server.hard_cap(server.thermal_params.t_ambient)

    def _thermally_unsafe(self, server: ServerRuntime) -> bool:
        return self._ambient_cap(server) < server.model.static_power - _EPS

    def _thermally_recovered(self, server: ServerRuntime) -> bool:
        return (
            self._ambient_cap(server)
            >= server.model.static_power + self.recovery_margin_w
        )

    def _apply_thermal_protection(self, now: float) -> None:
        for sid, server in self.servers.items():
            if sid in self._crash_down:
                continue
            if server.sleep_state in (SleepState.AWAKE, SleepState.WAKING):
                if self._thermally_unsafe(server):
                    server.fail()
                    self._thermal_down.add(sid)
                    self._record_event(
                        now,
                        "thermal_shutdown",
                        sid,
                        f"ambient={server.thermal_params.t_ambient:.1f}",
                    )
                    self._force_allocation = True
            elif sid in self._thermal_down:
                if self._thermally_recovered(server):
                    self._thermal_down.discard(sid)
                    server.repair()
                    self._record_event(now, "server_recovered", sid)
                    self._force_allocation = True

    # -- circuit trips -----------------------------------------------------
    def _apply_trips(self, now: float, tick: int) -> None:
        roots = frozenset(self.plant_faults.tripped_roots(tick))
        if roots == self._active_trip_roots:
            return
        for node_id in sorted(roots - self._active_trip_roots):
            self._record_event(now, "circuit_trip", node_id)
        for node_id in sorted(self._active_trip_roots - roots):
            self._record_event(now, "circuit_restore", node_id)
        self._active_trip_roots = roots
        leaves: set = set()
        for node_id in roots:
            if node_id in self._subtree_leaves:
                leaves |= self._subtree_leaves[node_id]
            elif node_id in self.servers:
                leaves.add(node_id)
            else:
                raise ValueError(f"unknown trip node id {node_id}")
        self._tripped_leaves = frozenset(leaves)
        self._force_allocation = True

    # -- evacuation --------------------------------------------------------
    def _evacuate(self, now: float) -> None:
        """Move VMs stranded on FAILED servers onto surplus hosts.

        One FFDLR pass over all eligible targets; the unidirectional
        rule is deliberately *not* consulted -- evacuating a crashed
        host is an emergency, not load balancing.  Unplaced VMs stay
        stranded (their demand drops each tick) and are retried next
        tick as budgets shift.
        """
        stranded: List[ServerRuntime] = [
            s
            for s in self.servers.values()
            if s.sleep_state is SleepState.FAILED and s.vms
        ]
        if not stranded:
            return
        capacity: Dict[int, float] = {}
        for sid, server in self.servers.items():
            if not server.is_awake or sid in self._tripped_leaves:
                continue
            if server.raw_demand > server.budget + _EPS:
                continue  # deficient servers never receive
            cap = self.migration_planner._target_capacity(server)
            if cap > _EPS:
                capacity[sid] = cap
        if not capacity:
            return
        items: List[Item] = []
        src_of: Dict[int, ServerRuntime] = {}
        for server in stranded:
            for vm in sorted(server.vms.values(), key=lambda v: v.vm_id):
                items.append(
                    Item(key=vm.vm_id, size=vm.current_demand, payload=vm)
                )
                src_of[vm.vm_id] = server
        bins = [Bin(key=sid, capacity=capacity[sid]) for sid in sorted(capacity)]
        result = ffdlr_pack(items, bins)
        moves: List[PlannedMove] = []
        for bin_ in result.bins:
            for item in bin_.contents:
                moves.append(
                    PlannedMove(
                        vm=item.payload,
                        src=src_of[item.key].node,
                        dst=self.servers[bin_.key].node,
                    )
                )
        if moves:
            self._execute_moves(moves, MigrationCause.EVACUATION, now)

    # ----------------------------------------------------------- hook wiring
    def _allocation_due(self) -> bool:
        due = super()._allocation_due() or self._force_allocation
        self._force_allocation = False
        return due

    def _server_cap(self, server: ServerRuntime) -> float:
        sid = server.node.node_id
        if sid in self._tripped_leaves:
            return 0.0
        if server.sleep_state is SleepState.FAILED:
            return 0.0
        believed = self.sensors.cap_temperature(server)
        if believed is None:
            return server.hard_cap()
        return server.hard_cap(believed)

    def _advance_plant(self, server: ServerRuntime, wall: float, dt: float) -> float:
        truth = server.update_temperature(wall, dt)
        transitions = self.sensors.observe(
            server, truth, wall, self._tick_index
        )
        for kind, detail in transitions:
            event_kind = (
                "sensor_quarantine" if kind == "quarantine" else "sensor_restore"
            )
            self._record_event(
                self.env.now, event_kind, server.node.node_id, detail
            )
            self._force_allocation = True
        return truth

    def _may_wake(self, server: ServerRuntime) -> bool:
        sid = server.node.node_id
        if sid in self._tripped_leaves:
            return False
        return self._thermally_recovered(server)

    # --------------------------------------------------- checkpoint/restore
    def snapshot_state(self) -> Dict:
        state = super().snapshot_state()
        # The schedule travels with the snapshot: live fault events
        # replace it wholesale (dataclasses.replace), so the restored
        # run must see the schedule as of the snapshot, not as built.
        state["plant"] = {
            "schedule": self.plant_faults,
            "force_allocation": self._force_allocation,
            "crash_down": set(self._crash_down),
            "thermal_down": set(self._thermal_down),
            "active_trip_roots": self._active_trip_roots,
            "tripped_leaves": self._tripped_leaves,
            "sensors": self.sensors.state_dict(),
            # Mutable since setpoint actuation landed; older snapshots
            # without the key restore to the as-built bases.
            "base_ambient": dict(self._base_ambient),
        }
        return state

    def restore_state(self, state: Dict) -> None:
        super().restore_state(state)
        plant = state["plant"]
        self.plant_faults = plant["schedule"]
        # The sensor bank holds its own schedule reference; keep it
        # pointed at the restored schedule object.
        self.sensors.schedule = self.plant_faults
        self._force_allocation = plant["force_allocation"]
        self._crash_down = set(plant["crash_down"])
        self._thermal_down = set(plant["thermal_down"])
        self._active_trip_roots = frozenset(plant["active_trip_roots"])
        self._tripped_leaves = frozenset(plant["tripped_leaves"])
        self.sensors.load_state_dict(plant["sensors"])
        if "base_ambient" in plant:
            self._base_ambient = dict(plant["base_ambient"])


def run_resilient(
    *,
    tree: Optional[Tree] = None,
    config: Optional[WillowConfig] = None,
    supply: Optional[SupplyTrace] = None,
    plant_faults: Optional[PlantFaultSchedule] = None,
    validator: Optional[SensorValidatorConfig] = None,
    cooling: Optional[CoolingModel] = None,
    outside_temp: float = 35.0,
    target_utilization: float = 0.4,
    n_ticks: int = 100,
    seed: int = 0,
    apps: tuple = SIMULATION_APPS,
    vms_per_server: int = 4,
    ambient_overrides: Optional[Mapping[str, float]] = None,
    collector: Optional[MetricsCollector] = None,
    tracer=None,
) -> tuple:
    """Build and run a fault-injected Willow simulation in one call.

    Mirrors :func:`repro.core.controller.run_willow`; with
    ``plant_faults=None`` (or an empty schedule) the run is bit-exact
    with the ideal-plant controller at the same seed.

    Returns ``(controller, collector)``.
    """
    from repro.topology.builders import build_paper_simulation

    tree = tree or build_paper_simulation()
    config = config or WillowConfig()
    servers = tree.servers()
    if supply is None:
        supply = constant_supply(len(servers) * config.circuit_limit)

    streams = RandomStreams(seed)
    placement = random_placement(
        [s.node_id for s in servers],
        apps,
        streams["placement"],
        vms_per_server=vms_per_server,
    )
    scale_for_target_utilization(
        placement, config.server_model.slope, target_utilization
    )
    controller = FaultTolerantWillowController(
        tree,
        config,
        supply,
        placement,
        plant_faults=plant_faults,
        validator=validator,
        cooling=cooling,
        outside_temp=outside_temp,
        ambient_overrides=ambient_overrides,
        collector=collector,
        seed=seed,
        tracer=tracer,
    )
    out = controller.run(n_ticks)
    return controller, out
