"""Legacy shim so `pip install -e .` works offline without `wheel`."""

from setuptools import setup

setup()
